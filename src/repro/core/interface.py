"""Jumanji's OS / system-call interface (paper Sec. V-B, Fig. 6).

The paper extends the system-call interface so that:

* system administrators *register* latency-critical applications;
* latency-critical applications report their tail-latency deadline and
  when each request begins and completes;
* all applications report their *trust domain* (e.g. the VM they belong
  to) so placement can enforce isolation.

This module provides that interface as a small façade over the runtime
pieces, tracking per-request lifetimes (begin -> complete) so latencies
include queueing, exactly as the controller expects. It is what a
hypervisor integration would call; the simulation layers drive the
runtime directly for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

__all__ = ["TrustDomain", "JumanjiSyscalls", "RequestToken"]


@dataclass(frozen=True)
class TrustDomain:
    """A set of mutually trusting applications (e.g. one VM)."""

    domain_id: int
    name: str = ""


@dataclass(frozen=True)
class RequestToken:
    """Handle returned by ``request_begin``; passed to ``request_end``."""

    app: str
    request_id: int
    begin_cycles: float


class JumanjiSyscalls:
    """The user-facing half of Jumanji's software stack.

    Wire ``on_latency`` to ``JumanjiRuntime.report_latency`` to close
    the loop with the feedback controller; the runtime's placement then
    consults :meth:`trust_domain_of` via the VM specs.
    """

    def __init__(
        self,
        on_latency: Optional[Callable[[str, float], None]] = None,
    ):
        self._on_latency = on_latency
        self._domains: Dict[int, TrustDomain] = {}
        self._app_domain: Dict[str, int] = {}
        self._lc_deadlines: Dict[str, float] = {}
        self._inflight: Dict[int, RequestToken] = {}
        self._next_request_id = 0
        self._completed: Dict[str, int] = {}

    # -- trust domains -----------------------------------------------------------

    def create_trust_domain(
        self, domain_id: int, name: str = ""
    ) -> TrustDomain:
        """Declare a trust domain (a VM, in the paper's deployment)."""
        if domain_id in self._domains:
            raise ValueError(f"domain {domain_id} already exists")
        domain = TrustDomain(domain_id, name)
        self._domains[domain_id] = domain
        return domain

    def assign_trust_domain(self, app: str, domain_id: int) -> None:
        """Attach an app to its trust domain."""
        if domain_id not in self._domains:
            raise KeyError(f"unknown domain {domain_id}")
        self._app_domain[app] = domain_id

    def trust_domain_of(self, app: str) -> TrustDomain:
        """The trust domain an app belongs to."""
        try:
            return self._domains[self._app_domain[app]]
        except KeyError:
            raise KeyError(f"{app!r} has no trust domain") from None

    def apps_in_domain(self, domain_id: int) -> Set[str]:
        """All apps assigned to a domain."""
        return {
            a for a, d in self._app_domain.items() if d == domain_id
        }

    # -- latency-critical registration ------------------------------------------------

    def register_latency_critical(
        self, app: str, deadline_cycles: float
    ) -> None:
        """Administrator registers an LC app and its deadline.

        Apps share performance *goals*, not resource requests — Jumanji
        takes responsibility for allocating resources to meet them.
        """
        if deadline_cycles <= 0:
            raise ValueError("deadline must be positive")
        if app not in self._app_domain:
            raise KeyError(
                f"{app!r} must join a trust domain before registering"
            )
        self._lc_deadlines[app] = deadline_cycles

    def is_latency_critical(self, app: str) -> bool:
        """Whether an app was registered as latency-critical."""
        return app in self._lc_deadlines

    def deadline_of(self, app: str) -> float:
        """The app's registered deadline (cycles)."""
        try:
            return self._lc_deadlines[app]
        except KeyError:
            raise KeyError(f"{app!r} is not latency-critical") from None

    def latency_critical_apps(self) -> List[str]:
        """Registered LC apps, sorted."""
        return sorted(self._lc_deadlines)

    # -- request lifetime ---------------------------------------------------------

    def request_begin(self, app: str, now_cycles: float) -> RequestToken:
        """An LC request arrived (enters the server queue)."""
        if app not in self._lc_deadlines:
            raise KeyError(f"{app!r} is not latency-critical")
        token = RequestToken(
            app=app,
            request_id=self._next_request_id,
            begin_cycles=now_cycles,
        )
        self._next_request_id += 1
        self._inflight[token.request_id] = token
        return token

    def request_end(
        self, token: RequestToken, now_cycles: float
    ) -> float:
        """An LC request completed; reports latency to the controller.

        Returns the end-to-end latency (including queueing delay, since
        ``begin`` is arrival, not service start).
        """
        if token.request_id not in self._inflight:
            raise KeyError(
                f"request {token.request_id} not in flight"
            )
        if now_cycles < token.begin_cycles:
            raise ValueError("completion before arrival")
        del self._inflight[token.request_id]
        latency = now_cycles - token.begin_cycles
        self._completed[token.app] = (
            self._completed.get(token.app, 0) + 1
        )
        if self._on_latency is not None:
            self._on_latency(token.app, latency)
        return latency

    def inflight_count(self, app: Optional[str] = None) -> int:
        """Requests currently in flight (queue depth proxy)."""
        if app is None:
            return len(self._inflight)
        return sum(
            1 for t in self._inflight.values() if t.app == app
        )

    def completed_count(self, app: str) -> int:
        """Completed requests observed for an app."""
        return self._completed.get(app, 0)
