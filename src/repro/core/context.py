"""The placement context: everything a placement algorithm may consult.

Placement runs every 100 ms in Jumanji's OS runtime. Its inputs are the
hardware description (config + NoC), the VM layout, each app's miss
curve (from UMONs in hardware; from the analytic profiles here), and the
feedback controller's current latency-critical allocation targets. The
:class:`PlacementContext` packages these so every LLC design exposes the
same ``allocate(ctx) -> Allocation`` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cache.misscurve import MissCurve
from ..config import Engine, SystemConfig, VmSpec
from ..noc.mesh import MeshNoc

__all__ = ["AppInfo", "PlacementContext"]


@dataclass(frozen=True)
class AppInfo:
    """One application as the placement layer sees it.

    ``curve`` maps MB of LLC to the app's miss *rate* (misses per
    kilocycle for batch apps; misses per query scaled by QPS for LC apps)
    so that marginal utilities are commensurable across apps, as UMON
    hardware would report. ``intensity`` is the app's LLC accesses per
    kilocycle, used to model sharing and energy.
    """

    name: str
    tile: int
    vm_id: int
    is_lc: bool
    curve: MissCurve
    intensity: float

    def __post_init__(self) -> None:
        if self.intensity < 0:
            raise ValueError("intensity must be non-negative")


@dataclass
class PlacementContext:
    """Inputs to one placement decision."""

    config: SystemConfig
    noc: MeshNoc
    vms: Sequence[VmSpec]
    apps: Dict[str, AppInfo]
    lat_sizes: Dict[str, float] = field(default_factory=dict)
    #: Which placement implementation the entry-point placers use —
    #: one of :data:`repro.config.Engine.CHOICES`: ``"fast"`` (the
    #: vectorised kernels) or ``"reference"`` (the frozen scalar copies
    #: in :mod:`repro.model.reference`). The two are differentially
    #: tested to be bit-identical.
    engine: str = Engine.FAST

    def __post_init__(self) -> None:
        Engine.validate(self.engine, source="PlacementContext")
        declared = {a for vm in self.vms for a in vm.apps}
        missing = declared - set(self.apps)
        if missing:
            raise ValueError(f"apps without AppInfo: {sorted(missing)}")
        for app, size in self.lat_sizes.items():
            if app not in self.apps:
                raise ValueError(f"lat size for unknown app {app!r}")
            if size < 0:
                raise ValueError(f"negative lat size for {app!r}")

    # -- allocation construction ----------------------------------------------------

    def new_allocation(self, partition_mode: str = "per-app") -> "Allocation":
        """A fresh :class:`~repro.core.allocation.Allocation` for this
        context's engine.

        Accelerated engines get an allocation with incremental bank
        totals and derived-stat memos enabled; the reference engine gets
        the plain recompute-everything object.
        """
        from .allocation import Allocation

        return Allocation(
            self.config,
            partition_mode=partition_mode,
            accelerated=Engine.accelerated(self.engine),
        )

    # -- convenience views --------------------------------------------------------

    @property
    def lc_apps(self) -> List[str]:
        """LC app names in VM order."""
        return [a for vm in self.vms for a in vm.lc_apps]

    @property
    def batch_apps(self) -> List[str]:
        """Batch app names in VM order."""
        return [a for vm in self.vms for a in vm.batch_apps]

    def vm_of(self, app: str) -> int:
        """VM id of an app."""
        return self.apps[app].vm_id

    def vm_of_app_map(self) -> Dict[str, int]:
        """Mapping of every app to its VM id."""
        return {name: info.vm_id for name, info in self.apps.items()}

    def tile_of(self, app: str) -> int:
        """Tile/core an app runs on."""
        return self.apps[app].tile

    def lat_size(self, app: str) -> float:
        """Controller-assigned LC allocation (MB); 0 if not set."""
        return self.lat_sizes.get(app, 0.0)

    def vm_by_id(self, vm_id: int) -> VmSpec:
        """The VmSpec with this id; KeyError if absent."""
        for vm in self.vms:
            if vm.vm_id == vm_id:
                return vm
        raise KeyError(f"no VM {vm_id}")

    def vm_centroid(self, vm: VmSpec) -> int:
        """Representative tile for a VM (hop-minimising centroid)."""
        return self.noc.centroid_tile(list(vm.cores))

    def fingerprint(self) -> Tuple:
        """Hashable identity of every placement-relevant input.

        Two contexts with equal fingerprints make any (deterministic)
        placer produce the same allocation: the tuple covers the LC size
        targets, the VM layout, and each app's tile/role/intensity plus
        the *content* digest of its miss curve — so drifting
        UMON-measured curves (new fingerprints) never alias a stale
        memoised placement. Used as the placement-memo key by
        :class:`repro.core.runtime.JumanjiRuntime`.
        """
        return (
            tuple(sorted(self.lat_sizes.items())),
            tuple(
                (vm.vm_id, tuple(vm.cores), tuple(vm.apps))
                for vm in self.vms
            ),
            tuple(
                (
                    name,
                    info.tile,
                    info.vm_id,
                    info.is_lc,
                    info.intensity,
                    info.curve.fingerprint,
                )
                for name, info in sorted(self.apps.items())
            ),
        )
