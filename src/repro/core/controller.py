"""Feedback control of latency-critical allocations (paper Listing 1).

Every completed request reports its end-to-end latency (including
queueing). After ``configuration_interval`` requests, the controller
computes the tail percentile of the window and adjusts the app's
allocation:

* tail > ``panic_threshold`` x deadline  -> panic-boost to a canonical
  safe size (one-eighth of the LLC);
* tail > ``target_hi`` x deadline        -> grow by ``step`` (10%);
* tail < ``target_lo`` x deadline        -> shrink by ``step``;
* otherwise                               -> hold.

The panic boost exists because even very short spikes in queueing
latency frequently set the tail (Sec. V-C); waiting for gradual growth
would miss deadlines for whole windows.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Union

from ..config import ControllerConfig, SystemConfig
from ..errors import TelemetryInvalid
from ..sim.queueing import percentile

__all__ = ["FeedbackController", "ControllerDecision"]


def _check_sample(app: str, value: float, what: str) -> float:
    """Validate one telemetry sample; returns it as a float.

    NaN, infinities, negatives, and non-numbers all raise
    :class:`~repro.errors.TelemetryInvalid` (a ``ValueError``): a bad
    sample entering the sizing window would silently poison the tail
    percentile for a whole configuration interval. Degraded-mode
    callers (the runtime) catch this, log, and hold the last-good
    allocation instead of propagating garbage into placement.
    """
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise TelemetryInvalid(
            f"{what} for {app!r} is not a number: {value!r}",
            app=app, value=value,
        ) from None
    if not math.isfinite(value):
        raise TelemetryInvalid(
            f"{what} for {app!r} is not finite: {value!r}",
            app=app, value=value,
        )
    if value < 0:
        raise TelemetryInvalid(
            f"{what} for {app!r} must be non-negative, got {value!r}",
            app=app, value=value,
        )
    return value


@dataclass(frozen=True)
class ControllerDecision:
    """One sizing decision, for logging/inspection."""

    app: str
    tail_latency: float
    deadline: float
    old_size_mb: float
    new_size_mb: float
    action: str  # 'grow' | 'shrink' | 'hold' | 'panic'


class FeedbackController:
    """Per-app allocation sizing by tail-latency feedback.

    Sizes are in MB, clamped to ``[min_size_mb, max_size_mb]``. Separate
    latency windows are kept per app, so one controller instance serves
    the whole machine (as Jumanji's runtime does).
    """

    def __init__(
        self,
        system: SystemConfig,
        config: Optional[ControllerConfig] = None,
        initial_size_mb: float = 2.5,
        min_size_mb: float = 0.25,
    ):
        self.system = system
        self.config = config if config is not None else ControllerConfig()
        if initial_size_mb <= 0:
            raise ValueError("initial size must be positive")
        if min_size_mb <= 0:
            raise ValueError("min size must be positive")
        self.initial_size_mb = initial_size_mb
        self.min_size_mb = min_size_mb
        self.max_size_mb = system.llc_size_mb
        self._sizes: Dict[str, float] = {}
        self._windows: Dict[str, List[float]] = {}
        self._deadlines: Dict[str, float] = {}
        self._resized_this_epoch: set = set()
        #: Decision log, ring-buffered when
        #: ``ControllerConfig.history_limit`` is set — a fleet of
        #: hundreds of per-chip controllers must not each grow an
        #: unbounded list over million-epoch runs.
        limit = self.config.history_limit
        self.decisions: "Union[List[ControllerDecision], Deque[ControllerDecision]]" = (
            deque(maxlen=limit) if limit is not None else []
        )

    # -- registration -------------------------------------------------------------

    def register(self, app: str, deadline: float) -> None:
        """Register an LC app with its tail-latency deadline.

        Mirrors the paper's system-call interface: apps report goals,
        not resource requests (Sec. V-B).
        """
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self._deadlines[app] = deadline
        self._sizes.setdefault(app, self.initial_size_mb)
        self._windows.setdefault(app, [])

    def unregister(self, app: str) -> None:
        """Forget an LC app entirely (tenant departure/migration).

        Removes its deadline, sizing target, and latency window so a
        departed tenant's ghost size never reaches the placer via
        :meth:`sizes`. Unknown apps raise ``KeyError`` — silently
        ignoring a bad id would hide scheduler bookkeeping bugs.
        """
        if app not in self._deadlines:
            raise KeyError(f"app {app!r} not registered")
        del self._deadlines[app]
        self._sizes.pop(app, None)
        self._windows.pop(app, None)
        self._resized_this_epoch.discard(app)

    def registered(self) -> List[str]:
        """Names of registered LC apps, sorted."""
        return sorted(self._deadlines)

    def size_of(self, app: str) -> float:
        """Current allocation target for ``app`` (MB)."""
        try:
            return self._sizes[app]
        except KeyError:
            raise KeyError(f"app {app!r} not registered") from None

    def sizes(self) -> Dict[str, float]:
        """Snapshot of app -> current allocation target (MB)."""
        return dict(self._sizes)

    def deadline_of(self, app: str) -> float:
        """The registered deadline (cycles) for an app."""
        return self._deadlines[app]

    @property
    def panic_size_mb(self) -> float:
        """The canonical safe size: one-eighth of the LLC."""
        return self.system.llc_size_mb * self.config.panic_fraction

    # -- the Listing 1 update path ---------------------------------------------------

    def epoch_boundary(self) -> None:
        """Signal that a reconfiguration has applied pending decisions.

        Allocation changes only take effect at the 100 ms placement
        epochs, so the controller limits itself to one non-panic resize
        per epoch: additional windows within the same epoch observe the
        *old* allocation, and acting on that stale feedback compounds
        (e.g. seven shrink windows firing before any takes effect).
        Panic boosts are exempt — missing a deadline is the one signal
        worth acting on repeatedly.
        """
        self._resized_this_epoch.clear()

    def request_completed(self, app: str, latency: float) -> Optional[
        ControllerDecision
    ]:
        """Record one completed request; maybe resize (Listing 1).

        Returns the decision if the window filled, else ``None``.
        """
        if app not in self._deadlines:
            raise KeyError(f"app {app!r} not registered")
        latency = _check_sample(app, latency, "latency sample")
        window = self._windows[app]
        window.append(latency)
        if len(window) <= self.config.configuration_interval:
            return None
        tail = percentile(window, self.config.percentile)
        window.clear()
        return self._update(app, tail)

    def ingest_completed(self, app: str, latencies: List[float]) -> None:
        """Bulk :meth:`request_completed` for pre-validated samples.

        ``latencies`` must already be finite, non-negative floats — the
        accelerated runtime numpy-checks the whole batch before calling
        (any suspect batch takes the per-sample path instead, so drop
        events are preserved). Windows fill and fire exactly as the
        per-sample path does: a window is processed the moment it holds
        ``configuration_interval + 1`` samples, over the same list
        contents, so the resize decisions are bit-identical.
        """
        if app not in self._deadlines:
            raise KeyError(f"app {app!r} not registered")
        window = self._windows[app]
        limit = self.config.configuration_interval + 1
        i, n = 0, len(latencies)
        while i < n:
            take = min(n - i, limit - len(window))
            window.extend(latencies[i : i + take])
            i += take
            if len(window) >= limit:
                tail = percentile(window, self.config.percentile)
                window.clear()
                self._update(app, tail)

    def _update(self, app: str, tail: float) -> ControllerDecision:
        cfg = self.config
        deadline = self._deadlines[app]
        old = self._sizes[app]
        throttled = app in self._resized_this_epoch
        if tail > deadline * cfg.panic_threshold:
            new = max(old, self.panic_size_mb)
            action = "panic"
        elif tail > deadline * cfg.target_hi and not throttled:
            new = old * (1.0 + cfg.step)
            action = "grow"
        elif tail < deadline * cfg.target_lo and not throttled:
            new = old * (1.0 - cfg.step)
            action = "shrink"
        else:
            new = old
            action = "hold"
        if action in ("grow", "shrink"):
            self._resized_this_epoch.add(app)
        new = min(max(new, self.min_size_mb), self.max_size_mb)
        self._sizes[app] = new
        decision = ControllerDecision(
            app=app,
            tail_latency=tail,
            deadline=deadline,
            old_size_mb=old,
            new_size_mb=new,
            action=action,
        )
        self.decisions.append(decision)
        return decision

    def force_update(self, app: str, tail: float) -> ControllerDecision:
        """Apply one update from an externally computed tail latency.

        The epoch-level system model computes tails per 100 ms window
        rather than streaming individual completions; this entry point
        feeds those directly into the same decision logic.
        """
        if app not in self._deadlines:
            raise KeyError(f"app {app!r} not registered")
        tail = _check_sample(app, tail, "tail sample")
        return self._update(app, tail)
