"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``designs``              — list the available LLC designs
* ``run``                  — run one design on one workload, print metrics
* ``figure <name>``        — regenerate one of the paper's figures/tables
* ``fleet run``            — rack-scale fleet simulation over many chips
* ``bench``                — benchmark suites: sweep figures (default),
  the trace-simulator fast path (``--suite tracesim``), the
  fault-injection chaos smoke (``--suite faults``), the observability
  overhead gate (``--suite obs``), or the fleet gate (``--suite
  fleet``)
* ``serve run``            — placement-as-a-service HTTP daemon
  (:mod:`repro.serve`); ``serve loadgen`` drives it with N synthetic
  tenants and prints throughput/latency
* ``deadline <app>``       — print an LC app's computed deadline
* ``report``               — assemble results/ into a single SUMMARY.md
* ``obs summarize <trace>`` — summarize a captured observability trace

``run`` and ``figure`` accept ``--trace-out`` / ``--metrics-out``
(defaults: the ``REPRO_TRACE`` / ``REPRO_METRICS`` env knobs) to record
the run through :mod:`repro.obs`: a span/event trace (``.jsonl`` lines,
or Chrome trace-event JSON when the path ends in ``.json`` — loadable
in Perfetto) and a plain-text metrics snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import CORE_FREQ_HZ
from .core.designs import DESIGNS
from .metrics.speedup import weighted_speedup
from .model.api import run_model
from .model.system import compute_deadline_cycles
from .model.workload import make_default_workload
from .workloads.tailbench import lc_profile_names

__all__ = ["main", "build_parser"]

_FIGURES = (
    "fig2", "fig4", "fig5", "fig8", "fig9", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "table1", "table2", "table3",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Jumanji: The Case for Dynamic NUCA in "
            "the Datacenter' (MICRO 2020)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list available LLC designs")

    run = sub.add_parser("run", help="run one design on one workload")
    run.add_argument("design", choices=sorted(DESIGNS))
    run.add_argument(
        "--lc", default="xapian",
        help="LC app (or 'Mixed'); default xapian",
    )
    run.add_argument("--load", choices=("high", "low"), default="high")
    run.add_argument("--mix", type=int, default=0,
                     help="batch-mix seed")
    run.add_argument("--epochs", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)
    _add_obs_outputs(run)

    fig = sub.add_parser(
        "figure", help="regenerate one of the paper's figures/tables"
    )
    fig.add_argument("name", choices=_FIGURES)
    fig.add_argument("--mixes", type=int, default=None)
    fig.add_argument("--epochs", type=int, default=None)
    fig.add_argument(
        "--jobs", type=int, default=None,
        help="parallel workers for sweep figures "
             "(default: REPRO_JOBS or cpu count)",
    )
    _add_obs_outputs(fig)

    fleet = sub.add_parser(
        "fleet",
        help="rack-scale fleet simulation (many chips, one scheduler)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    frun = fleet_sub.add_parser(
        "run",
        help="run one seeded fleet scenario and print canonical stats",
    )
    frun.add_argument(
        "--chips", type=int, default=None,
        help="sockets in the fleet (default: REPRO_FLEET_CHIPS or 64)",
    )
    frun.add_argument(
        "--epochs", type=int, default=None,
        help="100 ms fleet epochs (default: REPRO_FLEET_EPOCHS or 12)",
    )
    frun.add_argument("--seed", type=int, default=0)
    frun.add_argument(
        "--design", choices=sorted(DESIGNS), default="Jumanji",
        help="per-chip LLC design (default Jumanji)",
    )
    frun.add_argument(
        "--initial-tenants", type=int, default=None,
        help="tenants resident at epoch 0 (default: one per chip)",
    )
    frun.add_argument(
        "--arrival-rate", type=float, default=None,
        help="mean Poisson arrivals per epoch (default: chips/16)",
    )
    frun.add_argument(
        "--flash-prob", type=float, default=0.0,
        help="per-epoch probability a flash crowd starts (default 0)",
    )
    frun.add_argument(
        "--chip-failure", type=float, default=0.0,
        help="per-rack per-epoch failure probability (default 0)",
    )
    frun.add_argument(
        "--chip-repair", type=float, default=0.0,
        help="probability a failed chip is repairable; when it fires "
        "an MTTR delay is drawn and the chip rejoins (default 0)",
    )
    frun.add_argument(
        "--mttr", type=float, default=4.0,
        help="mean epochs a repair takes (exponential; default 4)",
    )
    frun.add_argument(
        "--chip-slow", type=float, default=0.0,
        help="per-chip per-epoch straggler probability: service "
        "times inflate and the scheduler deprioritises (default 0)",
    )
    frun.add_argument(
        "--slow-factor", type=float, default=2.0,
        help="service-time inflation on straggler chips (default 2)",
    )
    frun.add_argument(
        "--rack-size", type=int, default=8,
        help="chips per failure-correlation rack (default 8)",
    )
    frun.add_argument(
        "--admission-patience", type=int, default=4,
        help="epochs a deferred arrival waits before rejection "
        "(default 4)",
    )
    frun.add_argument(
        "--pending-limit", type=int, default=64,
        help="bound on the pending-arrivals queue (default 64)",
    )
    frun.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="crash-safe per-epoch journal; a killed run resumes "
        "from it byte-identically (default: "
        "REPRO_FLEET_CHECKPOINT)",
    )
    frun.add_argument(
        "--stats-out", default=None, metavar="PATH",
        help="also write the canonical fleet stats JSON to PATH",
    )
    _add_obs_outputs(frun)

    from .bench import add_bench_arguments

    bench = sub.add_parser(
        "bench",
        help="benchmark suites: sweeps (default), tracesim, model, "
        "the faults chaos smoke, the obs overhead gate, or the "
        "fleet gate",
    )
    add_bench_arguments(bench)

    serve = sub.add_parser(
        "serve",
        help="placement-as-a-service daemon and its load generator",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    srun = serve_sub.add_parser(
        "run",
        help="run the HTTP placement daemon until interrupted",
    )
    srun.add_argument(
        "--host", default=None,
        help="bind address (default: REPRO_SERVE_HOST or 127.0.0.1)",
    )
    srun.add_argument(
        "--port", type=int, default=None,
        help="TCP port, 0 picks a free one "
        "(default: REPRO_SERVE_PORT or 8123)",
    )
    srun.add_argument(
        "--max-body", type=int, default=None,
        help="request-body byte limit before 413 "
        "(default: REPRO_SERVE_MAX_BODY or 1 MiB)",
    )
    sload = serve_sub.add_parser(
        "loadgen",
        help="drive a daemon with synthetic tenants; with no --port, "
        "spawns an in-process daemon on a free port",
    )
    sload.add_argument(
        "--tenants", type=int, default=8,
        help="concurrent tenant sessions (default 8)",
    )
    sload.add_argument(
        "--requests", type=int, default=10,
        help="telemetry posts per tenant (default 10)",
    )
    sload.add_argument("--seed", type=int, default=0)
    sload.add_argument(
        "--concurrency", type=int, default=None,
        help="driver threads (default: min(tenants, 8))",
    )
    sload.add_argument(
        "--host", default=None,
        help="daemon to target (default: spawn in-process)",
    )
    sload.add_argument(
        "--port", type=int, default=None,
        help="daemon port (default: spawn in-process)",
    )

    dl = sub.add_parser(
        "deadline", help="print an LC app's computed deadline"
    )
    dl.add_argument("app", choices=lc_profile_names())

    rep = sub.add_parser(
        "report",
        help="assemble results/ into a single SUMMARY.md",
    )
    rep.add_argument(
        "--results", default="results",
        help="directory holding per-figure reports (default results/)",
    )

    obs_cmd = sub.add_parser(
        "obs", help="inspect observability traces (repro.obs)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summ = obs_sub.add_parser(
        "summarize",
        help="top spans by self-time, event counts, retries, "
        "degradations",
    )
    summ.add_argument(
        "trace",
        help="trace file: .jsonl event log or Chrome trace-event .json",
    )
    summ.add_argument(
        "--top", type=int, default=10,
        help="span names to list (default 10)",
    )

    return parser


def _add_obs_outputs(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``repro.obs`` output flags to a subparser."""
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record a span/event trace (.jsonl lines, or Chrome "
        "trace-event JSON if PATH ends in .json; default: the "
        "REPRO_TRACE env knob)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a plain-text metrics snapshot (default: the "
        "REPRO_METRICS env knob)",
    )


def _cmd_designs() -> int:
    for name in DESIGNS:
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.lc == "Mixed":
        from .workloads.mixes import random_lc_mix

        lc_apps = list(random_lc_mix(args.mix))
    else:
        lc_apps = [args.lc]
    workload = make_default_workload(
        lc_apps, mix_seed=args.mix, load=args.load
    )
    static = run_model(
        design="Static", workload=workload, epochs=args.epochs,
        seed=args.seed,
    )
    result = (
        static
        if args.design == "Static"
        else run_model(
            design=args.design, workload=workload, epochs=args.epochs,
            seed=args.seed,
        )
    )
    speedup = weighted_speedup(
        result.batch_ipcs(), static.batch_ipcs()
    )
    print(f"design:            {result.design}")
    print(f"workload:          {args.lc} x4 + mix {args.mix}, "
          f"{args.load} load")
    print(f"batch speedup:     {speedup:.3f} (vs Static)")
    print("tail latency / deadline:")
    for app in sorted(result.lc_deadlines):
        print(f"  {app:<14s} {result.lc_tail_normalized(app):6.2f}")
    print(f"vulnerability:     {result.avg_vulnerability():.2f} "
          "attackers/access")
    print(f"avg LC allocation: {result.avg_lc_size():.2f} MB")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from . import experiments as E

    name = args.name
    kwargs = {}
    if args.mixes is not None:
        kwargs["mixes"] = args.mixes
    if args.epochs is not None:
        kwargs["epochs"] = args.epochs
    if args.jobs is not None and name in (
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18",
    ):
        kwargs["jobs"] = args.jobs
    if name == "table2":
        print(E.tables.format_table2())
        return 0
    if name == "table3":
        print(E.tables.format_table3())
        return 0
    if name == "table1":
        print(E.tables.format_table1(E.tables.run_table1(**kwargs)))
        return 0
    if name in ("fig2", "fig8", "fig11"):
        kwargs.pop("mixes", None)
    if name == "fig2":
        kwargs.pop("epochs", None)
    if name == "fig11":
        kwargs.pop("epochs", None)
    if name == "fig12":
        kwargs.pop("epochs", None)
        if "mixes" in kwargs:
            kwargs["num_mixes"] = kwargs.pop("mixes")
    if name in ("fig4", "fig5", "fig9"):
        kwargs.pop("mixes", None)
    module = getattr(E, name)
    result = module.run(**kwargs)
    print(module.format_table(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Assemble the reproduction summary from per-figure reports."""
    import pathlib

    from .experiments.report import collect, write_summary

    results = pathlib.Path(args.results)
    if not results.is_dir():
        print(f"no results directory at {results}; run the benchmarks "
              "first (pytest benchmarks/ --benchmark-only)")
        return 1
    status = collect(results)
    write_summary(results)
    print(
        f"wrote {results / 'SUMMARY.md'} "
        f"({len(status.present)} artifacts, "
        f"{'complete' if status.complete else 'incomplete'})"
    )
    return 0


def _cmd_deadline(args: argparse.Namespace) -> int:
    cycles = compute_deadline_cycles(args.app)
    print(
        f"{args.app}: {cycles:.3g} cycles "
        f"({cycles / CORE_FREQ_HZ * 1e3:.2f} ms at 2.66 GHz)"
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """``repro fleet run``: one seeded scenario, canonical stats out.

    Stdout is exactly the result's canonical JSON — no wall-clock, no
    unordered iteration — so two same-seed invocations are
    byte-identical (the acceptance gate). Exits non-zero if any fleet
    invariant (conservation/capacity/isolation) broke during the run.
    With ``--checkpoint`` (or ``REPRO_FLEET_CHECKPOINT``) each epoch
    is journalled as it completes, and a killed run resumes from the
    journal with byte-identical output.
    """
    import pathlib

    from .config import Settings
    from .faults import FaultPlan
    from .fleet import Scenario, run_fleet

    settings = Settings.from_env()
    chips = args.chips
    if chips is None:
        chips = settings.fleet_chips if settings.fleet_chips else 64
    epochs = args.epochs
    if epochs is None:
        epochs = settings.fleet_epochs if settings.fleet_epochs else 12
    plan = None
    if (
        args.chip_failure > 0.0
        or args.chip_repair > 0.0
        or args.chip_slow > 0.0
    ):
        plan = FaultPlan(
            seed=args.seed,
            chip_failure=args.chip_failure,
            chip_repair=args.chip_repair,
            chip_slow=args.chip_slow,
            repair_mttr_epochs=args.mttr,
            slow_service_factor=args.slow_factor,
        )
    scenario = Scenario(
        chips=chips,
        epochs=epochs,
        seed=args.seed,
        initial_tenants=args.initial_tenants,
        arrival_rate=args.arrival_rate,
        flash_prob=args.flash_prob,
        rack_size=args.rack_size,
        admission_patience=args.admission_patience,
        pending_limit=args.pending_limit,
        fault_plan=plan,
    )
    checkpoint = args.checkpoint or settings.fleet_checkpoint
    result = run_fleet(
        scenario, design=args.design, checkpoint=checkpoint
    )
    stats = result.to_json()
    print(stats)
    if args.stats_out:
        pathlib.Path(args.stats_out).write_text(stats + "\n")
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve run`` / ``repro serve loadgen``."""
    from . import obs
    from .serve import ServeDaemon
    from .serve.loadgen import run_loadgen

    if args.serve_command == "run":
        # Live metrics make /v1/metrics useful out of the box.
        obs.configure(enabled=True)
        daemon = ServeDaemon(
            host=args.host, port=args.port, max_body=args.max_body
        )
        print(f"repro serve: listening on "
              f"http://{daemon.host}:{daemon.port} (Ctrl-C to stop)")
        try:
            daemon.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            daemon.close()
        return 0

    # loadgen: target an existing daemon, or spawn one in-process.
    daemon = None
    host, port = args.host, args.port
    if port is None:
        obs.configure(enabled=True)
        daemon = ServeDaemon(host=host, port=0)
        daemon.start()
        host, port = daemon.host, daemon.port
        print(f"repro serve loadgen: in-process daemon on "
              f"http://{host}:{port}")
    try:
        report = run_loadgen(
            host or "127.0.0.1", port,
            tenants=args.tenants,
            requests=args.requests,
            seed=args.seed,
            concurrency=args.concurrency or min(args.tenants, 8),
        )
    finally:
        if daemon is not None:
            daemon.close()
    for key, value in report.summary().items():
        print(f"{key:<22s} {value}")
    for err in report.errors[:5]:
        print(f"error: {err}")
    for violation in report.violations[:5]:
        print(f"violation: {violation}")
    return 0 if report.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    """``repro obs summarize``: digest a captured trace."""
    from .obs import format_summary, load_trace, summarize

    records = load_trace(args.trace)
    print(format_summary(summarize(records, top=args.top)))
    return 0


def _with_obs_outputs(args: argparse.Namespace, command) -> int:
    """Run ``command(args)`` capturing a trace/metrics if requested.

    The ``--trace-out`` / ``--metrics-out`` flags win; otherwise the
    ``REPRO_TRACE`` / ``REPRO_METRICS`` env knobs (via
    :class:`repro.config.Settings`) apply. With neither, observability
    stays disabled and the command runs untouched.
    """
    from . import obs
    from .config import Settings

    settings = Settings.from_env()
    trace = args.trace_out or settings.trace
    metrics = args.metrics_out or settings.metrics
    if not trace and not metrics:
        return command(args)
    obs.configure(trace=trace, metrics=metrics)
    try:
        return command(args)
    finally:
        written = obs.flush()
        for kind in ("trace", "metrics"):
            if written.get(kind):
                print(f"wrote {kind} {written[kind]}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "designs":
        return _cmd_designs()
    if args.command == "run":
        return _with_obs_outputs(args, _cmd_run)
    if args.command == "figure":
        return _with_obs_outputs(args, _cmd_figure)
    if args.command == "fleet":
        return _with_obs_outputs(args, _cmd_fleet)
    if args.command == "bench":
        from .bench import cmd_bench

        return cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "deadline":
        return _cmd_deadline(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
