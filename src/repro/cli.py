"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``designs``              — list the available LLC designs
* ``run``                  — run one design on one workload, print metrics
* ``figure <name>``        — regenerate one of the paper's figures/tables
* ``bench``                — benchmark suites: sweep figures (default),
  the trace-simulator fast path (``--suite tracesim``), or the
  fault-injection chaos smoke (``--suite faults``)
* ``deadline <app>``       — print an LC app's computed deadline
* ``report``               — assemble results/ into a single SUMMARY.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import CORE_FREQ_HZ
from .core.designs import DESIGNS
from .metrics.speedup import weighted_speedup
from .model.system import compute_deadline_cycles, run_design
from .model.workload import make_default_workload
from .workloads.tailbench import lc_profile_names

__all__ = ["main", "build_parser"]

_FIGURES = (
    "fig2", "fig4", "fig5", "fig8", "fig9", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "table1", "table2", "table3",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Jumanji: The Case for Dynamic NUCA in "
            "the Datacenter' (MICRO 2020)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list available LLC designs")

    run = sub.add_parser("run", help="run one design on one workload")
    run.add_argument("design", choices=sorted(DESIGNS))
    run.add_argument(
        "--lc", default="xapian",
        help="LC app (or 'Mixed'); default xapian",
    )
    run.add_argument("--load", choices=("high", "low"), default="high")
    run.add_argument("--mix", type=int, default=0,
                     help="batch-mix seed")
    run.add_argument("--epochs", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)

    fig = sub.add_parser(
        "figure", help="regenerate one of the paper's figures/tables"
    )
    fig.add_argument("name", choices=_FIGURES)
    fig.add_argument("--mixes", type=int, default=None)
    fig.add_argument("--epochs", type=int, default=None)
    fig.add_argument(
        "--jobs", type=int, default=None,
        help="parallel workers for sweep figures "
             "(default: REPRO_JOBS or cpu count)",
    )

    from .bench import add_bench_arguments

    bench = sub.add_parser(
        "bench",
        help="benchmark suites: sweeps (default), tracesim, or the "
        "faults chaos smoke",
    )
    add_bench_arguments(bench)

    dl = sub.add_parser(
        "deadline", help="print an LC app's computed deadline"
    )
    dl.add_argument("app", choices=lc_profile_names())

    rep = sub.add_parser(
        "report",
        help="assemble results/ into a single SUMMARY.md",
    )
    rep.add_argument(
        "--results", default="results",
        help="directory holding per-figure reports (default results/)",
    )

    return parser


def _cmd_designs() -> int:
    for name in DESIGNS:
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.lc == "Mixed":
        from .workloads.mixes import random_lc_mix

        lc_apps = list(random_lc_mix(args.mix))
    else:
        lc_apps = [args.lc]
    workload = make_default_workload(
        lc_apps, mix_seed=args.mix, load=args.load
    )
    static = run_design(
        "Static", workload, num_epochs=args.epochs, seed=args.seed
    )
    result = (
        static
        if args.design == "Static"
        else run_design(
            args.design, workload, num_epochs=args.epochs,
            seed=args.seed,
        )
    )
    speedup = weighted_speedup(
        result.batch_ipcs(), static.batch_ipcs()
    )
    print(f"design:            {result.design}")
    print(f"workload:          {args.lc} x4 + mix {args.mix}, "
          f"{args.load} load")
    print(f"batch speedup:     {speedup:.3f} (vs Static)")
    print("tail latency / deadline:")
    for app in sorted(result.lc_deadlines):
        print(f"  {app:<14s} {result.lc_tail_normalized(app):6.2f}")
    print(f"vulnerability:     {result.avg_vulnerability():.2f} "
          "attackers/access")
    print(f"avg LC allocation: {result.avg_lc_size():.2f} MB")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from . import experiments as E

    name = args.name
    kwargs = {}
    if args.mixes is not None:
        kwargs["mixes"] = args.mixes
    if args.epochs is not None:
        kwargs["epochs"] = args.epochs
    if args.jobs is not None and name in (
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18",
    ):
        kwargs["jobs"] = args.jobs
    if name == "table2":
        print(E.tables.format_table2())
        return 0
    if name == "table3":
        print(E.tables.format_table3())
        return 0
    if name == "table1":
        print(E.tables.format_table1(E.tables.run_table1(**kwargs)))
        return 0
    if name in ("fig2", "fig8", "fig11"):
        kwargs.pop("mixes", None)
    if name == "fig2":
        kwargs.pop("epochs", None)
    if name == "fig11":
        kwargs.pop("epochs", None)
    if name == "fig12":
        kwargs.pop("epochs", None)
        if "mixes" in kwargs:
            kwargs["num_mixes"] = kwargs.pop("mixes")
    if name in ("fig4", "fig5", "fig9"):
        kwargs.pop("mixes", None)
    module = getattr(E, name)
    result = module.run(**kwargs)
    print(module.format_table(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Assemble the reproduction summary from per-figure reports."""
    import pathlib

    from .experiments.report import collect, write_summary

    results = pathlib.Path(args.results)
    if not results.is_dir():
        print(f"no results directory at {results}; run the benchmarks "
              "first (pytest benchmarks/ --benchmark-only)")
        return 1
    status = collect(results)
    write_summary(results)
    print(
        f"wrote {results / 'SUMMARY.md'} "
        f"({len(status.present)} artifacts, "
        f"{'complete' if status.complete else 'incomplete'})"
    )
    return 0


def _cmd_deadline(args: argparse.Namespace) -> int:
    cycles = compute_deadline_cycles(args.app)
    print(
        f"{args.app}: {cycles:.3g} cycles "
        f"({cycles / CORE_FREQ_HZ * 1e3:.2f} ms at 2.66 GHz)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "designs":
        return _cmd_designs()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "bench":
        from .bench import cmd_bench

        return cmd_bench(args)
    if args.command == "deadline":
        return _cmd_deadline(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
