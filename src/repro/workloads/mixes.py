"""Workload mix generation (paper Sec. VII).

Each experiment runs four latency-critical applications with a random mix
of sixteen SPEC applications, arranged as four VMs of five cores each
(one LC + four batch apps per VM). This module generates those mixes
reproducibly and builds the corresponding :class:`~repro.config.VmSpec`
lists, including the generalised configurations of Fig. 17 (1..12 VMs).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..config import SystemConfig, VmSpec
from .spec import profile_names
from .tailbench import lc_profile_names

__all__ = [
    "random_batch_mix",
    "random_lc_mix",
    "corner_core_layout",
    "build_vms",
    "build_vm_configuration",
    "instance_name",
    "base_app",
]


def instance_name(app: str, index: int) -> str:
    """Unique per-instance app id (apps can repeat within a mix)."""
    return f"{app}#{index}"


def base_app(instance: str) -> str:
    """Profile name behind an instance id."""
    return instance.split("#", 1)[0]


def random_batch_mix(
    seed: int, count: int = 16, rng: Optional[random.Random] = None
) -> Tuple[str, ...]:
    """A random multiset of ``count`` batch apps (with replacement).

    The paper draws sixteen SPEC applications at random per mix; sampling
    with replacement matches "randomly chosen from SPEC CPU2006".
    """
    rng = rng if rng is not None else random.Random(seed)
    names = profile_names()
    return tuple(rng.choice(names) for _ in range(count))


def random_lc_mix(
    seed: int, count: int = 4, rng: Optional[random.Random] = None
) -> Tuple[str, ...]:
    """A random mix of ``count`` LC apps (for the 'Mixed' workloads)."""
    rng = rng if rng is not None else random.Random(seed ^ 0x5CA1AB1E)
    names = lc_profile_names()
    return tuple(rng.choice(names) for _ in range(count))


def corner_core_layout(config: SystemConfig) -> List[List[int]]:
    """Four balanced corner clusters, LC corner cores first.

    Mirrors the paper's Fig. 2 layout: each VM occupies a cluster of
    ``num_cores/4`` cores around one chip corner, with its LC app on the
    corner core. Tiles are assigned to the nearest corner that still has
    capacity (ties broken by corner order), so meshes whose sides do not
    split evenly — like the paper's 5x4 — still yield balanced clusters.
    """
    cols, rows = config.mesh_cols, config.mesh_rows
    if config.num_cores % 4 != 0:
        raise ValueError("corner layout needs a multiple of 4 cores")
    per_quadrant = config.num_cores // 4
    corners = (
        0,
        cols - 1,
        (rows - 1) * cols,
        rows * cols - 1,
    )

    def dist(tile: int, corner: int) -> int:
        tc, tr = config.tile_coords(tile)
        cc, cr = config.tile_coords(corner)
        return abs(tc - cc) + abs(tr - cr)

    quadrants: List[List[int]] = [[c] for c in corners]
    remaining = [
        t for t in range(config.num_cores) if t not in corners
    ]
    # Assign tiles in order of how strongly they prefer one corner over
    # the others, so contested central tiles are placed last.
    remaining.sort(
        key=lambda t: (
            sorted(dist(t, c) for c in corners)[1]
            - min(dist(t, c) for c in corners),
        ),
        reverse=True,
    )
    for tile in remaining:
        order = sorted(range(4), key=lambda q: (dist(tile, corners[q]), q))
        for q in order:
            if len(quadrants[q]) < per_quadrant:
                quadrants[q].append(tile)
                break
    return quadrants


def build_vms(
    lc_apps: Sequence[str],
    batch_apps: Sequence[str],
    config: SystemConfig,
) -> List[VmSpec]:
    """The paper's default 4 x (1 LC + 4 B) VM arrangement.

    ``lc_apps`` has four entries (one per VM); ``batch_apps`` sixteen
    (four per VM). Instance ids are made unique across the machine.
    """
    if len(lc_apps) != 4:
        raise ValueError("default arrangement needs exactly 4 LC apps")
    if len(batch_apps) != 16:
        raise ValueError("default arrangement needs exactly 16 batch apps")
    quadrants = corner_core_layout(config)
    vms = []
    for vm_id in range(4):
        lc = (instance_name(lc_apps[vm_id], vm_id),)
        batch = tuple(
            instance_name(batch_apps[vm_id * 4 + j], vm_id * 4 + j)
            for j in range(4)
        )
        vms.append(
            VmSpec(
                vm_id=vm_id,
                cores=tuple(quadrants[vm_id]),
                lc_apps=lc,
                batch_apps=batch,
            )
        )
    return vms


def build_vm_configuration(
    num_vms: int,
    lc_apps: Sequence[str],
    batch_apps: Sequence[str],
    config: SystemConfig,
) -> List[VmSpec]:
    """Generalised VM arrangements for the Fig. 17 scaling study.

    Splits the 4 LC + 16 batch apps across ``num_vms`` VMs (1, 2, 4, 5,
    10, or 12 in the paper). Cores are assigned contiguously; each VM
    receives a proportional slice of LC and batch apps. With 12 VMs the
    paper uses one VM per LC app plus one per pair of batch apps.
    """
    if len(lc_apps) != 4 or len(batch_apps) != 16:
        raise ValueError("scaling study uses 4 LC + 16 batch apps")
    if num_vms < 1 or num_vms > 12:
        raise ValueError("num_vms must be in 1..12")

    lc_ids = [instance_name(a, i) for i, a in enumerate(lc_apps)]
    batch_ids = [
        instance_name(a, i + 4) for i, a in enumerate(batch_apps)
    ]

    # Partition apps into VM groups.
    groups: List[Tuple[List[str], List[str]]] = []
    if num_vms <= 4:
        lc_per_vm = [len(lc_ids) // num_vms] * num_vms
        for i in range(len(lc_ids) % num_vms):
            lc_per_vm[i] += 1
        batch_per_vm = [len(batch_ids) // num_vms] * num_vms
        for i in range(len(batch_ids) % num_vms):
            batch_per_vm[i] += 1
        li = bi = 0
        for v in range(num_vms):
            groups.append(
                (
                    lc_ids[li : li + lc_per_vm[v]],
                    batch_ids[bi : bi + batch_per_vm[v]],
                )
            )
            li += lc_per_vm[v]
            bi += batch_per_vm[v]
    else:
        # LC apps get their own VMs; batch apps are grouped to fill the
        # remaining VMs as evenly as possible.
        batch_vms = num_vms - len(lc_ids)
        if batch_vms < 1:
            raise ValueError("need at least one batch VM")
        per = [len(batch_ids) // batch_vms] * batch_vms
        for i in range(len(batch_ids) % batch_vms):
            per[i] += 1
        for lc in lc_ids:
            groups.append(([lc], []))
        bi = 0
        for v in range(batch_vms):
            groups.append(([], batch_ids[bi : bi + per[v]]))
            bi += per[v]

    # Assign cores contiguously, one per app.
    vms: List[VmSpec] = []
    core = 0
    for vm_id, (lc, batch) in enumerate(groups):
        n = len(lc) + len(batch)
        cores = tuple(range(core, core + n))
        core += n
        vms.append(
            VmSpec(
                vm_id=vm_id,
                cores=cores,
                lc_apps=tuple(lc),
                batch_apps=tuple(batch),
            )
        )
    if core > config.num_cores:
        raise ValueError(
            f"configuration needs {core} cores, system has "
            f"{config.num_cores}"
        )
    return vms
