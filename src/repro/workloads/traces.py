"""Synthetic address-trace generators for the trace-driven simulator.

The event-driven half of the reproduction (``repro.sim.tracesim``) needs
access streams. These generators produce line-address streams with
controllable locality so the trace-driven cache model can be validated
against the analytic miss curves:

* :class:`StreamingTrace` — sequential sweep over a large footprint
  (lbm-like; misses at any realistic cache size).
* :class:`WorkingSetTrace` — uniform reuse over a fixed working set
  (cliff-shaped miss curve at the working-set size).
* :class:`ZipfTrace` — Zipf-distributed reuse (smooth, friendly curve).
* :class:`MixedTrace` — probabilistic mixture of the above.

All generators are seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..config import LINE_BYTES
from ..errors import ConfigError

__all__ = [
    "AddressTrace",
    "StreamingTrace",
    "WorkingSetTrace",
    "ZipfTrace",
    "MixedTrace",
    "ReplayTrace",
    "trace_from_spec",
]


class AddressTrace:
    """Interface: an infinite, deterministic stream of line addresses."""

    def __init__(self, base_line: int = 0):
        if base_line < 0:
            raise ValueError("base_line must be non-negative")
        self.base_line = base_line

    def next_line(self) -> int:
        """The next line address in the stream."""
        raise NotImplementedError

    def lines(self, count: int) -> List[int]:
        """The next ``count`` line addresses."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.next_line() for _ in range(count)]

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next_line()

    @staticmethod
    def lines_for_bytes(num_bytes: int) -> int:
        """Number of cache lines covering ``num_bytes``."""
        return max(1, num_bytes // LINE_BYTES)


class StreamingTrace(AddressTrace):
    """Sequential sweep over ``footprint_lines`` lines, wrapping around."""

    def __init__(self, footprint_lines: int, base_line: int = 0):
        super().__init__(base_line)
        if footprint_lines < 1:
            raise ValueError("footprint must be at least one line")
        self.footprint_lines = footprint_lines
        self._pos = 0

    def next_line(self) -> int:
        """The next line address in the stream."""
        line = self.base_line + self._pos
        self._pos = (self._pos + 1) % self.footprint_lines
        return line


class WorkingSetTrace(AddressTrace):
    """Uniform random reuse over a fixed working set."""

    def __init__(
        self, working_set_lines: int, seed: int = 0, base_line: int = 0
    ):
        super().__init__(base_line)
        if working_set_lines < 1:
            raise ValueError("working set must be at least one line")
        self.working_set_lines = working_set_lines
        self._rng = random.Random(seed)

    def next_line(self) -> int:
        """The next line address in the stream."""
        return self.base_line + self._rng.randrange(self.working_set_lines)


class ZipfTrace(AddressTrace):
    """Zipf(alpha)-distributed reuse over ``num_lines`` lines.

    Hot lines are re-referenced often, the tail rarely — producing the
    smooth miss curves typical of cache-friendly applications.
    """

    def __init__(
        self,
        num_lines: int,
        alpha: float = 1.0,
        seed: int = 0,
        base_line: int = 0,
    ):
        super().__init__(base_line)
        if num_lines < 1:
            raise ValueError("need at least one line")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.num_lines = num_lines
        self.alpha = alpha
        ranks = np.arange(1, num_lines + 1, dtype=float)
        weights = ranks ** (-alpha)
        self._cdf = np.cumsum(weights) / weights.sum()
        self._rng = random.Random(seed)
        # Permute ranks across the address space so hot lines are not all
        # in the same cache sets.
        perm = list(range(num_lines))
        random.Random(seed ^ 0xD15EA5E).shuffle(perm)
        self._perm = perm

    def next_line(self) -> int:
        """The next line address in the stream."""
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u))
        rank = min(rank, self.num_lines - 1)
        return self.base_line + self._perm[rank]


class DoublePassTrace(AddressTrace):
    """Visit a block of lines twice, then move to the next block.

    Each line is installed on the first pass and re-referenced on the
    second, shortly after installation. Lines inserted with a long
    re-reference prediction (SRRIP) survive until the second pass;
    lines inserted as distant (BRRIP) are evicted first — so this
    pattern's miss rate is highly sensitive to the insertion policy,
    which makes it the canonical probe for set-dueling leakage.
    """

    def __init__(
        self,
        footprint_lines: int,
        block_lines: int = 512,
        base_line: int = 0,
    ):
        super().__init__(base_line)
        if footprint_lines < 1 or block_lines < 1:
            raise ValueError("footprint and block must be positive")
        if block_lines > footprint_lines:
            raise ValueError("block cannot exceed footprint")
        self.footprint_lines = footprint_lines
        self.block_lines = block_lines
        self._block_start = 0
        self._offset = 0
        self._pass = 0

    def next_line(self) -> int:
        """The next line address in the stream."""
        line = self.base_line + self._block_start + self._offset
        self._offset += 1
        if self._offset >= self.block_lines or (
            self._block_start + self._offset >= self.footprint_lines
        ):
            self._offset = 0
            self._pass += 1
            if self._pass >= 2:
                self._pass = 0
                self._block_start += self.block_lines
                if self._block_start >= self.footprint_lines:
                    self._block_start = 0
        return line


class MixedTrace(AddressTrace):
    """Probabilistic mixture of component traces."""

    def __init__(
        self,
        components: Sequence[AddressTrace],
        weights: Optional[Sequence[float]] = None,
        seed: int = 0,
    ):
        super().__init__(0)
        if not components:
            raise ValueError("need at least one component")
        self.components = list(components)
        if weights is None:
            weights = [1.0] * len(self.components)
        if len(weights) != len(self.components):
            raise ValueError("one weight per component required")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative, sum positive")
        total = float(sum(weights))
        self._cum = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._rng = random.Random(seed)

    def next_line(self) -> int:
        """The next line address in the stream."""
        u = self._rng.random()
        for comp, edge in zip(self.components, self._cum):
            if u <= edge:
                return comp.next_line()
        return self.components[-1].next_line()


class ReplayTrace(AddressTrace):
    """Replays a pregenerated list of line addresses, wrapping around.

    Used by the tracesim benchmark (and anywhere two simulators must see
    byte-identical streams without paying generation twice): materialise
    a stream once with any generator's :meth:`~AddressTrace.lines`, then
    hand each simulator its own ``ReplayTrace``. :meth:`lines` is an
    O(count) slice, so replay adds almost nothing to the measured
    simulator time.
    """

    def __init__(self, lines: Sequence[int]):
        super().__init__(0)
        if not lines:
            raise ValueError("need at least one line to replay")
        self._lines: List[int] = list(lines)
        self._pos = 0

    def next_line(self) -> int:
        """The next recorded line address, wrapping at the end."""
        line = self._lines[self._pos]
        self._pos += 1
        if self._pos == len(self._lines):
            self._pos = 0
        return line

    def lines(self, count: int) -> List[int]:
        """The next ``count`` recorded lines (one or two list slices)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        out: List[int] = []
        src = self._lines
        pos = self._pos
        while count:
            take = min(count, len(src) - pos)
            out.extend(src[pos : pos + take])
            pos += take
            if pos == len(src):
                pos = 0
            count -= take
        self._pos = pos
        return out

#: Trace classes reachable from :func:`trace_from_spec`, by spec kind.
_SPEC_KINDS = {
    "streaming": StreamingTrace,
    "working_set": WorkingSetTrace,
    "zipf": ZipfTrace,
    "double_pass": DoublePassTrace,
}


def _check_spec_keys(kind: str, cls: type, spec: dict) -> None:
    """Reject spec keys the generator's constructor doesn't take."""
    import inspect

    params = inspect.signature(cls.__init__).parameters
    unknown = sorted(k for k in spec if k not in params)
    if unknown:
        raise ConfigError(
            f"unknown {kind!r} trace spec keys: {unknown}"
        )


def trace_from_spec(spec) -> AddressTrace:
    """Build a trace from a JSON-friendly ``{"kind": ..., ...}`` spec.

    Sharded runs (``repro.runner``) identify a cell by the canonical
    JSON of its parameters, so the traces a cell consumes must be
    expressible as plain data rather than live objects. Every generator
    above is covered::

        {"kind": "zipf", "num_lines": 4096, "alpha": 0.9, "seed": 7}
        {"kind": "mixed", "seed": 1, "weights": [3, 1],
         "components": [{"kind": "streaming", ...}, ...]}

    Keys other than ``kind`` (and, for ``mixed``, ``components`` /
    ``weights`` / ``seed``) are passed to the generator's constructor
    unchanged, so specs validate exactly like direct construction —
    and unknown keys raise :class:`~repro.errors.ConfigError` naming
    the offender, so a payload typo fails loudly instead of silently
    simulating the wrong trace.
    """
    spec = dict(spec)
    try:
        kind = spec.pop("kind")
    except KeyError:
        raise ConfigError("trace spec needs a 'kind' entry") from None
    if kind == "mixed":
        components = [
            trace_from_spec(c) for c in spec.pop("components", [])
        ]
        _check_spec_keys(kind, MixedTrace, spec)
        return MixedTrace(components, **spec)
    if kind == "replay":
        try:
            lines = spec.pop("lines")
        except KeyError:
            raise ConfigError(
                "replay trace spec needs a 'lines' entry"
            ) from None
        if spec:
            raise ConfigError(
                f"unknown replay trace spec keys: {sorted(spec)}"
            )
        return ReplayTrace(lines)
    try:
        cls = _SPEC_KINDS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown trace kind {kind!r}; choose from "
            f"{sorted(_SPEC_KINDS) + ['mixed', 'replay']}"
        ) from None
    _check_spec_keys(kind, cls, spec)
    return cls(**spec)
