"""Workload models: batch profiles, LC server models, mixes, traces."""

from .mixes import (
    base_app,
    build_vm_configuration,
    build_vms,
    corner_core_layout,
    instance_name,
    random_batch_mix,
    random_lc_mix,
)
from .spec import BatchAppProfile, SPEC_PROFILES, get_profile, profile_names
from .tailbench import (
    LC_PROFILES,
    LatencyCriticalProfile,
    REFERENCE_ALLOC_MB,
    get_lc_profile,
    lc_profile_names,
)
from .traces import (
    AddressTrace,
    MixedTrace,
    StreamingTrace,
    WorkingSetTrace,
    ZipfTrace,
)

__all__ = [
    "BatchAppProfile",
    "SPEC_PROFILES",
    "get_profile",
    "profile_names",
    "LatencyCriticalProfile",
    "LC_PROFILES",
    "REFERENCE_ALLOC_MB",
    "get_lc_profile",
    "lc_profile_names",
    "AddressTrace",
    "StreamingTrace",
    "WorkingSetTrace",
    "ZipfTrace",
    "MixedTrace",
    "random_batch_mix",
    "random_lc_mix",
    "build_vms",
    "build_vm_configuration",
    "corner_core_layout",
    "instance_name",
    "base_app",
]
