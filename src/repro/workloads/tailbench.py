"""TailBench-like latency-critical application models.

The paper's latency-critical (LC) applications are masstree, xapian,
img-dnn, silo, and moses from TailBench, driven by a built-in client with
exponentially distributed interarrival times (Sec. VII). The binaries are
unavailable, so each app is replaced by a server model whose per-request
service time is derived from the same microarchitectural quantities the
real apps expose to the LLC:

    service_cycles(alloc) = base_cycles
                          + accesses_per_query * (bank_latency + noc_rtt)
                          + misses_per_query(alloc_mb) * miss_penalty

``misses_per_query`` follows a per-app analytic miss curve, so a bigger
or closer LLC allocation shortens service time; once the offered load
exceeds the resulting service rate, queueing makes tail latency explode —
exactly the mechanism behind the paper's Fig. 8.

Calibration: the paper defines high load as 50% utilisation and low load
as 10% (Table III QPS). Each profile's cycle budget is calibrated so
that, at the *reference allocation* (four LLC ways under S-NUCA way-
partitioning, i.e. 2.5 MB in the 20-bank system — the paper's deadline
condition), utilisation at high-load QPS is 50%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..cache.misscurve import MissCurve
from ..config import CORE_FREQ_HZ, QPS_TABLE, QpsConfig

__all__ = [
    "LatencyCriticalProfile",
    "LC_PROFILES",
    "get_lc_profile",
    "lc_profile_names",
    "REFERENCE_ALLOC_MB",
]

#: The paper's deadline reference point: 4 ways of a 32-way, 20 MB LLC.
REFERENCE_ALLOC_MB = 2.5

#: Server utilisation at the reference allocation under high-load QPS
#: (see ``reference_service_cycles``). TailBench's peak-throughput
#: calibration runs with the machine to itself; at the constrained
#: 4-way reference the same QPS lands at ~80% utilisation, on the
#: rising flank of the queueing curve (cf. the paper's Fig. 8, where the
#: deadline condition sits just left of the tail-latency knee).
REFERENCE_UTILIZATION = 0.75

#: Effective penalty per LLC miss in cycles. Latency-critical server
#: code is dominated by dependent pointer chases (trees, hash tables,
#: inverted indexes): misses do not overlap, and each logical lookup
#: chains several dependent misses plus TLB refills, so the effective
#: per-miss stall is several times the raw memory latency — unlike the
#: batch model, whose SPEC-like loops overlap misses (MLP deflation).
MISS_PENALTY_CYCLES = 450.0

#: Latency-critical apps keep only a modest fraction of their service
#: time in LLC-miss stalls: TailBench request processing is dominated by
#: instruction footprint and on-chip data structures, so their absolute
#: miss rates are far below SPEC's. This is why a data-movement-only
#: placer (Jigsaw) deprioritises them — and why doing so is catastrophic
#: at 80% utilisation.

#: LLC bank access latency used during calibration (Table II).
BANK_LATENCY_CYCLES = 13.0

#: Average round-trip NoC latency assumed during calibration (S-NUCA
#: striping across a 5x4 mesh with 2-cycle routers, from a central tile).
CALIBRATION_NOC_RTT = 20.0


@dataclass(frozen=True)
class LatencyCriticalProfile:
    """An analytic latency-critical application model.

    ``mem_frac`` and ``llc_frac`` give the fractions of the reference
    service time spent in memory stalls and LLC-access stalls; the
    remainder is core-bound compute. ``shape``/``knee_mb`` parameterise
    the per-query miss curve, and ``service_cv`` the coefficient of
    variation of per-request service time (request heterogeneity).
    """

    name: str
    qps: QpsConfig
    mem_frac: float
    llc_frac: float
    shape: str
    knee_mb: float
    floor: float
    service_cv: float

    def __post_init__(self) -> None:
        if not 0 < self.mem_frac < 1 or not 0 < self.llc_frac < 1:
            raise ValueError("stall fractions must be in (0, 1)")
        if self.mem_frac + self.llc_frac >= 1:
            raise ValueError("stall fractions must leave compute time")
        if self.shape not in ("friendly", "cliff"):
            raise ValueError(f"unknown LC miss-curve shape {self.shape!r}")
        if not 0 <= self.floor < 1:
            raise ValueError("floor must be in [0, 1)")

    # -- calibration -----------------------------------------------------------

    @property
    def reference_service_cycles(self) -> float:
        """Mean service time at the reference allocation.

        TailBench calibrates load against *peak* throughput, measured
        with the machine to itself (ample LLC, no co-runners). At the
        4-way way-partitioned reference the app runs slower than at that
        peak, so "high load" (50% of peak QPS) corresponds to a
        utilisation of :data:`REFERENCE_UTILIZATION` at the reference
        allocation — on the rising flank of the queueing curve, which is
        where the paper's Fig. 8 places the deadline condition.
        """
        return REFERENCE_UTILIZATION * CORE_FREQ_HZ / self.qps.high_qps

    def _decay(self, size_mb: float) -> float:
        """Normalised miss-curve decay in (floor, 1]."""
        if self.shape == "friendly":
            raw = math.exp(-size_mb / self.knee_mb)
        else:  # cliff
            steepness = 4.0 / max(self.knee_mb * 0.3, 1e-6)
            raw = 1.0 / (
                1.0 + math.exp(steepness * (size_mb - self.knee_mb))
            )
            raw /= 1.0 / (1.0 + math.exp(-steepness * self.knee_mb))
        return self.floor + (1.0 - self.floor) * min(raw, 1.0)

    @property
    def misses_per_query_ref(self) -> float:
        """Misses per query at the reference allocation."""
        return (
            self.mem_frac
            * self.reference_service_cycles
            / MISS_PENALTY_CYCLES
        )

    @property
    def accesses_per_query(self) -> float:
        """LLC accesses per query (constant across allocations)."""
        return (
            self.llc_frac
            * self.reference_service_cycles
            / (BANK_LATENCY_CYCLES + CALIBRATION_NOC_RTT)
        )

    @property
    def base_cycles(self) -> float:
        """Allocation-independent compute cycles per query."""
        return self.reference_service_cycles * (
            1.0 - self.mem_frac - self.llc_frac
        )

    # -- the service-time model -------------------------------------------------

    def misses_per_query(self, alloc_mb: float) -> float:
        """Per-query LLC misses at an ``alloc_mb`` allocation."""
        if alloc_mb < 0:
            raise ValueError("allocation must be non-negative")
        ref = self._decay(REFERENCE_ALLOC_MB)
        return self.misses_per_query_ref * self._decay(alloc_mb) / ref

    def mean_service_cycles(
        self, alloc_mb: float, noc_rtt: float = CALIBRATION_NOC_RTT
    ) -> float:
        """Mean per-request service time at an allocation and placement.

        ``noc_rtt`` is the average round-trip NoC latency from the app's
        core to its allocated banks — the quantity D-NUCA shrinks.
        """
        if noc_rtt < 0:
            raise ValueError("noc_rtt must be non-negative")
        return (
            self.base_cycles
            + self.accesses_per_query * (BANK_LATENCY_CYCLES + noc_rtt)
            + self.misses_per_query(alloc_mb) * MISS_PENALTY_CYCLES
        )

    def utilization(
        self,
        qps: float,
        alloc_mb: float,
        noc_rtt: float = CALIBRATION_NOC_RTT,
    ) -> float:
        """Offered load: arrival rate x mean service time."""
        if qps < 0:
            raise ValueError("qps must be non-negative")
        return qps * self.mean_service_cycles(alloc_mb, noc_rtt) / CORE_FREQ_HZ

    def miss_curve(self, num_points: int, step: float) -> MissCurve:
        """Per-query miss curve sampled onto a uniform MB grid.

        Used by Jigsaw-style placers, which see LC apps only through
        their (small) miss curves — the root of Jigsaw's deadline
        violations.
        """
        values = [self.misses_per_query(i * step) for i in range(num_points)]
        return MissCurve(values, step)

    def qps_at(self, load: str) -> float:
        """Arrival rate at 'low' or 'high' load (Table III)."""
        if load == "low":
            return self.qps.low_qps
        if load == "high":
            return self.qps.high_qps
        raise ValueError("load must be 'low' or 'high'")


def _lc(
    name: str,
    mem_frac: float,
    llc_frac: float,
    shape: str,
    knee_mb: float,
    floor: float,
    service_cv: float,
) -> Tuple[str, LatencyCriticalProfile]:
    return name, LatencyCriticalProfile(
        name, QPS_TABLE[name], mem_frac, llc_frac, shape, knee_mb, floor,
        service_cv,
    )


#: The five LC apps. Stall fractions and curve shapes reflect TailBench's
#: published characterisation: masstree/silo are memory-resident key-value
#: / OLTP engines with pointer-chasing (cliff-ish curves, high memory
#: sensitivity); xapian (search) and moses (SMT) have large working sets
#: with smooth reuse; img-dnn is compute-heavy with a modest working set.
LC_PROFILES: Dict[str, LatencyCriticalProfile] = dict(
    [
        _lc("masstree", 0.26, 0.30, "cliff", 1.3, 0.10, 0.20),
        _lc("xapian", 0.25, 0.30, "friendly", 1.3, 0.04, 0.20),
        _lc("img-dnn", 0.18, 0.24, "friendly", 1.0, 0.12, 0.20),
        _lc("silo", 0.24, 0.28, "cliff", 1.0, 0.12, 0.20),
        _lc("moses", 0.22, 0.26, "friendly", 1.5, 0.08, 0.25),
    ]
)


def lc_profile_names() -> Tuple[str, ...]:
    """The five LC application names, in the paper's order."""
    return ("masstree", "xapian", "img-dnn", "silo", "moses")


def get_lc_profile(name: str) -> LatencyCriticalProfile:
    """Look up an LC profile by name."""
    try:
        return LC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown LC app {name!r}; choose from {lc_profile_names()}"
        ) from None
