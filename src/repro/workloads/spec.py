"""Synthetic SPEC CPU2006-like batch application profiles.

The paper draws its sixteen batch applications from SPEC CPU2006 (401,
403, 410, 429, 433, 434, 436, 437, 454, 459, 462, 470, 471, 473, 482,
483). The binaries and reference inputs are not available here, so each
application is replaced by a *profile*: a base CPI, an LLC access
intensity (accesses per kilo-instruction, APKI), and a parametric miss
curve. The profiles span the canonical SPEC behaviours that drive cache-
partitioning studies:

* **streaming** — high MPKI, nearly cache-insensitive (lbm-, libquantum-like);
* **friendly** — moderate MPKI that falls smoothly with capacity
  (perlbench-, gcc-like);
* **cliff** — MPKI flat until the working set fits, then a sharp drop
  (mcf-, omnetpp-like);
* **flat** — low MPKI regardless of capacity (povray-, gamess-like).

Only these curve shapes, intensities, and CPIs enter the evaluation, so
the qualitative conclusions (who wins, where crossovers fall) are
preserved under the substitution; see DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..cache.misscurve import MissCurve

__all__ = ["BatchAppProfile", "SPEC_PROFILES", "get_profile", "profile_names"]


@dataclass(frozen=True)
class BatchAppProfile:
    """An analytic batch-application model.

    ``mpki(size_mb)`` is computed as::

        mpki_min + (mpki_max - mpki_min) * decay(size_mb)

    where ``decay`` depends on the shape: exponential for *friendly*,
    logistic (sigmoid cliff at ``knee_mb``) for *cliff*, and a slow
    exponential for *streaming*. ``flat`` profiles keep MPKI constant.
    """

    name: str
    shape: str
    cpi_base: float
    apki: float
    mpki_max: float
    mpki_min: float
    knee_mb: float

    def __post_init__(self) -> None:
        if self.shape not in ("streaming", "friendly", "cliff", "flat"):
            raise ValueError(f"unknown shape {self.shape!r}")
        if self.mpki_min > self.mpki_max:
            raise ValueError("mpki_min must not exceed mpki_max")
        if self.knee_mb <= 0:
            raise ValueError("knee_mb must be positive")

    def mpki(self, size_mb: float) -> float:
        """LLC misses per kilo-instruction at ``size_mb`` of LLC."""
        if size_mb < 0:
            raise ValueError("size must be non-negative")
        span = self.mpki_max - self.mpki_min
        if self.shape == "flat":
            return self.mpki_max
        if self.shape == "friendly":
            decay = math.exp(-size_mb / self.knee_mb)
        elif self.shape == "streaming":
            # Very slow decay: caching barely helps until huge sizes.
            decay = math.exp(-size_mb / (8.0 * self.knee_mb))
        else:  # cliff
            steepness = 4.0 / max(self.knee_mb * 0.25, 1e-6)
            decay = 1.0 / (1.0 + math.exp(steepness * (size_mb - self.knee_mb)))
        return self.mpki_min + span * decay

    def miss_curve(self, num_points: int, step: float) -> MissCurve:
        """Sample the analytic curve onto a uniform grid of MB sizes."""
        values = [self.mpki(i * step) for i in range(num_points)]
        return MissCurve(values, step)


def _p(
    name: str,
    shape: str,
    cpi: float,
    apki: float,
    hi: float,
    lo: float,
    knee: float,
) -> Tuple[str, BatchAppProfile]:
    return name, BatchAppProfile(name, shape, cpi, apki, hi, lo, knee)


#: Sixteen profiles named after the SPEC CPU2006 codes the paper uses.
#: Intensities and curve shapes follow published characterisations of the
#: suite (e.g. Jaleel's SPEC2006 cache working-set study): mcf/omnetpp as
#: capacity cliffs, lbm/libquantum/milc as streaming, perlbench/gcc/
#: gobmk as cache-friendly, povray/gamess-class apps as compute-bound.
SPEC_PROFILES: Dict[str, BatchAppProfile] = dict(
    [
        _p("401.bzip2", "friendly", 0.9, 18.0, 4.5, 0.9, 1.2),
        _p("403.gcc", "friendly", 1.0, 22.0, 6.5, 0.8, 1.6),
        _p("410.bwaves", "streaming", 1.2, 28.0, 11.0, 8.0, 3.0),
        _p("429.mcf", "cliff", 1.6, 55.0, 22.0, 6.0, 3.5),
        _p("433.milc", "flat", 1.3, 26.0, 12.5, 12.5, 2.0),
        _p("434.zeusmp", "friendly", 1.1, 20.0, 5.5, 1.2, 1.8),
        _p("436.cactusADM", "friendly", 1.2, 16.0, 4.8, 1.0, 2.5),
        _p("437.leslie3d", "streaming", 1.2, 24.0, 9.0, 6.5, 2.5),
        _p("454.calculix", "flat", 0.8, 8.0, 1.2, 1.2, 1.0),
        _p("459.GemsFDTD", "streaming", 1.3, 27.0, 10.5, 7.0, 3.0),
        _p("462.libquantum", "streaming", 1.1, 32.0, 14.0, 11.0, 4.0),
        _p("470.lbm", "streaming", 1.2, 30.0, 13.0, 10.0, 3.5),
        _p("471.omnetpp", "cliff", 1.4, 40.0, 14.0, 3.0, 2.5),
        _p("473.astar", "cliff", 1.2, 30.0, 9.0, 2.2, 1.6),
        _p("482.sphinx3", "friendly", 1.0, 25.0, 8.0, 1.5, 2.0),
        _p("483.xalancbmk", "cliff", 1.3, 35.0, 11.0, 2.5, 2.0),
    ]
)


def profile_names() -> Tuple[str, ...]:
    """The sixteen batch application names, sorted."""
    return tuple(sorted(SPEC_PROFILES))


def get_profile(name: str) -> BatchAppProfile:
    """Look up a profile by its SPEC-style name."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown batch app {name!r}; choose from {profile_names()}"
        ) from None
