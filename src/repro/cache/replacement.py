"""Cache replacement policies: LRU, SRRIP, BRRIP, and DRRIP with set-dueling.

DRRIP (Jaleel et al., ISCA 2010) dynamically selects between SRRIP and
BRRIP using *set-dueling*: a few "leader" sets are hard-wired to each
policy and a shared policy-selector (PSEL) counter tracks which leader
group misses less; follower sets use the winning policy.

The PSEL counter and leader sets are shared by *every* partition in the
bank. This shared microarchitectural state is exactly the performance-
leakage channel the paper demonstrates in Fig. 12: a co-running untrusted
application can flip the bank's policy choice and change a victim's miss
rate even when way-partitioning keeps their data apart.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "SrripPolicy",
    "BrripPolicy",
    "DrripPolicy",
    "make_policy",
]


class ReplacementPolicy:
    """Interface for per-set replacement state.

    The policy tracks ``num_sets`` sets of ``num_ways`` ways each. The bank
    calls :meth:`victim` with the ways eligible for eviction (after
    partitioning constraints), then :meth:`on_fill` / :meth:`on_hit` to
    update state.
    """

    name = "base"

    def __init__(self, num_sets: int, num_ways: int):
        if num_sets < 1 or num_ways < 1:
            raise ValueError("need at least one set and one way")
        self.num_sets = num_sets
        self.num_ways = num_ways

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        """Choose the way to evict among ``candidates`` (non-empty)."""
        raise NotImplementedError

    def on_hit(self, set_idx: int, way: int) -> None:
        """Update state on a hit to ``way``."""
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int) -> None:
        """Update state when a new line is installed in ``way``."""
        raise NotImplementedError

    def on_miss(self, set_idx: int) -> None:
        """Called on every miss to ``set_idx`` (used by set-dueling)."""

    def _check_set(self, set_idx: int) -> None:
        if not 0 <= set_idx < self.num_sets:
            raise IndexError(f"set {set_idx} out of range")


class LruPolicy(ReplacementPolicy):
    """True LRU via per-set recency timestamps."""

    name = "lru"

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._stamp: List[List[int]] = [
            [0] * num_ways for _ in range(num_sets)
        ]
        self._clock = 0

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        """See :meth:`ReplacementPolicy.victim`."""
        self._check_set(set_idx)
        if not candidates:
            raise ValueError("no eviction candidates")
        stamps = self._stamp[set_idx]
        return min(candidates, key=lambda w: stamps[w])

    def on_hit(self, set_idx: int, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_hit`."""
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_fill`."""
        self._touch(set_idx, way)


class _RripBase(ReplacementPolicy):
    """Common machinery for RRIP variants.

    Each line holds an M-bit re-reference prediction value (RRPV);
    ``2^M - 1`` means "re-referenced in the distant future" and is the
    eviction target. Hits promote to RRPV 0 (hit-priority).
    """

    def __init__(self, num_sets: int, num_ways: int, m_bits: int = 2):
        super().__init__(num_sets, num_ways)
        if m_bits < 1:
            raise ValueError("need at least 1 RRPV bit")
        self.rrpv_max = (1 << m_bits) - 1
        self._rrpv: List[List[int]] = [
            [self.rrpv_max] * num_ways for _ in range(num_sets)
        ]

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        """See :meth:`ReplacementPolicy.victim`."""
        self._check_set(set_idx)
        if not candidates:
            raise ValueError("no eviction candidates")
        rrpvs = self._rrpv[set_idx]
        # Closed form of the hardware aging loop (age all candidates by 1
        # until one reaches rrpv_max, evict the first such way): every
        # candidate ages by the same amount, so the victim is the first
        # candidate holding the maximum RRPV and the aging delta is
        # rrpv_max minus that maximum. Aging only touches the candidate
        # ways so partitions stay isolated in content (the *policy
        # choice* is what leaks in DRRIP).
        best = candidates[0]
        top = rrpvs[best]
        for way in candidates:
            v = rrpvs[way]
            if v > top:
                top = v
                best = way
        delta = self.rrpv_max - top
        if delta:
            for way in candidates:
                rrpvs[way] += delta
        return best

    def on_hit(self, set_idx: int, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_hit`."""
        self._rrpv[set_idx][way] = 0

    def _insertion_rrpv(self, set_idx: int) -> int:
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_fill`."""
        self._rrpv[set_idx][way] = self._insertion_rrpv(set_idx)


class SrripPolicy(_RripBase):
    """Static RRIP: insert at RRPV = max - 1 ("long re-reference")."""

    name = "srrip"

    def _insertion_rrpv(self, set_idx: int) -> int:
        return self.rrpv_max - 1


class BrripPolicy(_RripBase):
    """Bimodal RRIP: insert at max, rarely (1/32) at max - 1.

    Uses a deterministic counter rather than randomness so simulations are
    reproducible.
    """

    name = "brrip"
    THROTTLE = 32

    def __init__(self, num_sets: int, num_ways: int, m_bits: int = 2):
        super().__init__(num_sets, num_ways, m_bits)
        self._fill_count = 0

    def _insertion_rrpv(self, set_idx: int) -> int:
        self._fill_count += 1
        if self._fill_count % self.THROTTLE == 0:
            return self.rrpv_max - 1
        return self.rrpv_max


class DrripPolicy(_RripBase):
    """Dynamic RRIP with set-dueling between SRRIP and BRRIP.

    ``leader_period`` spaces the leader sets: set ``i`` is an SRRIP leader
    when ``i % leader_period == 0`` and a BRRIP leader when
    ``i % leader_period == leader_period // 2``. A saturating PSEL counter
    (10 bits by default) is incremented on SRRIP-leader misses and
    decremented on BRRIP-leader misses; follower sets use BRRIP when the
    counter's MSB is set, SRRIP otherwise.

    The PSEL counter is bank-global and *not* partitioned — the
    performance-leakage channel of the paper's Fig. 12.
    """

    name = "drrip"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        m_bits: int = 2,
        psel_bits: int = 10,
        leader_period: int = 32,
    ):
        super().__init__(num_sets, num_ways, m_bits)
        if leader_period < 2:
            raise ValueError("leader_period must be >= 2")
        self.psel_bits = psel_bits
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self.leader_period = leader_period
        self._brrip_throttle = 0
        self._psel_msb = 1 << (psel_bits - 1)
        # Per-set role codes (0 = SRRIP leader, 1 = BRRIP leader,
        # 2 = follower): the role test sits on every miss and fill, so
        # it must not recompute the modulo / string compare each time.
        half = leader_period // 2
        self._role_code: List[int] = [
            0 if i % leader_period == 0
            else 1 if i % leader_period == half
            else 2
            for i in range(num_sets)
        ]

    # -- set-dueling --------------------------------------------------------

    def set_role(self, set_idx: int) -> str:
        """'srrip', 'brrip', or 'follower' role of a set."""
        return ("srrip", "brrip", "follower")[self._role_code[set_idx]]

    @property
    def follower_policy(self) -> str:
        """Policy currently used by follower sets."""
        return "brrip" if self.psel & self._psel_msb else "srrip"

    def on_miss(self, set_idx: int) -> None:
        """See :meth:`ReplacementPolicy.on_miss`."""
        self._check_set(set_idx)
        code = self._role_code[set_idx]
        if code == 0:
            if self.psel < self.psel_max:
                self.psel += 1
        elif code == 1:
            if self.psel > 0:
                self.psel -= 1

    # -- insertion -----------------------------------------------------------

    def _policy_for_set(self, set_idx: int) -> str:
        role = self.set_role(set_idx)
        if role == "follower":
            return self.follower_policy
        return role

    def _insertion_rrpv(self, set_idx: int) -> int:
        code = self._role_code[set_idx]
        if code == 2:
            code = 1 if self.psel & self._psel_msb else 0
        if code == 0:
            return self.rrpv_max - 1
        self._brrip_throttle += 1
        if self._brrip_throttle % BrripPolicy.THROTTLE == 0:
            return self.rrpv_max - 1
        return self.rrpv_max


_POLICIES = {
    "lru": LruPolicy,
    "srrip": SrripPolicy,
    "brrip": BrripPolicy,
    "drrip": DrripPolicy,
}


def make_policy(
    name: str, num_sets: int, num_ways: int, **kwargs
) -> ReplacementPolicy:
    """Construct a replacement policy by name."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, num_ways, **kwargs)
