"""Talus cliff removal (Beckmann & Sanchez, HPCA 2015).

The paper approximates DRRIP's miss curve "by taking the convex hull of
LRU's miss curve, which can be measured much more cheaply [7, 81]" —
reference [7] is Talus. Talus *achieves* the convex hull of any policy's
miss curve by splitting one partition into two shadow partitions: a
fraction ``rho`` of the access stream (selected by address hash) goes to
a shadow partition of size ``s1`` and the rest to one of size ``s2``,
where ``s1`` and ``s2`` are hull vertices bracketing the target size.
By linearity of expectation the combined miss rate interpolates the
hull — turning any cliff into its chord.

This module computes the Talus split for a measured curve and provides
the hulled curve that placement algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .misscurve import MissCurve

__all__ = ["TalusSplit", "talus_split", "talus_curve", "hull_vertices"]


@dataclass(frozen=True)
class TalusSplit:
    """A Talus configuration for one target size.

    A fraction ``rho`` of accesses is steered to a shadow partition of
    ``size1`` units; the remaining ``1 - rho`` to one of ``size2``
    units, with ``rho * size1 + (1 - rho) * size2 == size``.
    """

    size: float
    size1: float
    size2: float
    rho: float
    expected_misses: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")


def hull_vertices(curve: MissCurve) -> List[Tuple[float, float]]:
    """(size, misses) vertices of the curve's lower convex hull."""
    hull = curve.convex_hull()
    xs = np.arange(curve.num_points) * curve.step
    ys = hull.values
    vertices = [(float(xs[0]), float(ys[0]))]
    for i in range(1, curve.num_points - 1):
        # Keep points where the slope changes (true hull vertices).
        left = (ys[i] - ys[i - 1]) / curve.step
        right = (ys[i + 1] - ys[i]) / curve.step
        if abs(left - right) > 1e-12:
            vertices.append((float(xs[i]), float(ys[i])))
    vertices.append((float(xs[-1]), float(ys[-1])))
    return vertices


def talus_split(curve: MissCurve, size: float) -> TalusSplit:
    """The Talus shadow-partition split achieving the hull at ``size``.

    When ``size`` sits on a hull vertex no split is needed
    (``rho = 1``); otherwise the bracketing vertices define the split.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    size = min(size, curve.max_size)
    vertices = hull_vertices(curve)
    for vx, vy in vertices:
        if abs(vx - size) < 1e-12:
            return TalusSplit(
                size=size, size1=vx, size2=vx, rho=1.0,
                expected_misses=vy,
            )
    lo = max(v for v in vertices if v[0] < size)
    hi = min(v for v in vertices if v[0] > size)
    frac = (size - lo[0]) / (hi[0] - lo[0])
    # Steer `frac` of capacity into the larger shadow partition.
    # Misses interpolate linearly between the vertex miss rates.
    expected = lo[1] * (1 - frac) + hi[1] * frac
    # rho: fraction of the access stream into partition 1 (size1 = hi).
    # Talus sizes shadow partitions in proportion to their stream share:
    # size1 = rho^-1-scaled... using the standard construction where
    # each shadow partition behaves like a `1/share`-scaled cache:
    # share of stream to the large vertex equals `frac`.
    return TalusSplit(
        size=size,
        size1=hi[0],
        size2=lo[0],
        rho=frac,
        expected_misses=expected,
    )


def talus_curve(curve: MissCurve) -> MissCurve:
    """The miss curve the partition exhibits under Talus = its hull.

    This is exactly what the paper's UMON path does for DRRIP banks:
    measure LRU cheaply, take the hull, and let placement treat the
    result as the achievable curve.
    """
    return curve.convex_hull()
