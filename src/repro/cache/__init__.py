"""Cache substrate: miss curves, banks, partitioning, replacement, UMONs."""

from .bank import AccessResult, CacheBank
from .misscurve import MissCurve, combine_curves
from .partition import WayPartitioner
from .replacement import (
    BrripPolicy,
    DrripPolicy,
    LruPolicy,
    ReplacementPolicy,
    SrripPolicy,
    make_policy,
)
from .talus import TalusSplit, hull_vertices, talus_curve, talus_split
from .umon import Umon
from .vantage import VantageBank

__all__ = [
    "TalusSplit",
    "talus_split",
    "talus_curve",
    "hull_vertices",
    "VantageBank",
    "AccessResult",
    "CacheBank",
    "MissCurve",
    "combine_curves",
    "WayPartitioner",
    "ReplacementPolicy",
    "LruPolicy",
    "SrripPolicy",
    "BrripPolicy",
    "DrripPolicy",
    "make_policy",
    "Umon",
]
