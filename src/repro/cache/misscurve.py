"""Miss curves: misses-per-kilo-instruction as a function of LLC allocation.

Miss curves are the central abstraction that Jumanji's placement algorithms
consume. A :class:`MissCurve` maps an allocation size (in cache *units*,
typically MB or ways) to a miss rate. The module also provides:

* :func:`MissCurve.convex_hull` — the paper approximates DRRIP's miss curve
  by the convex (lower) hull of LRU's miss curve (Sec. IV-A, citing
  Talus [7]).
* :func:`combine_curves` — the combined miss curve of several applications
  sharing one allocation, following the model of Whirlpool [61, App. B]:
  at a combined size ``s`` the apps partition ``s`` to equalise marginal
  utility, which the Lookahead-style combination below computes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MissCurve", "combine_curves", "chain_argbest"]


class MissCurve:
    """A monotone non-increasing miss curve sampled at uniform points.

    ``curve[i]`` is the miss rate (e.g. MPKI) when the application is
    allocated ``i * step`` units of cache. The curve has
    ``num_points = len(values)`` samples covering allocations
    ``0, step, 2*step, ..., (num_points-1)*step``.
    """

    __slots__ = ("_values", "_step", "_fingerprint")

    def __init__(self, values: Sequence[float], step: float = 1.0):
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("miss curve needs at least two samples")
        if step <= 0:
            raise ValueError("step must be positive")
        if np.any(arr < 0):
            raise ValueError("miss rates must be non-negative")
        # Enforce monotonicity: more cache never hurts. Tiny violations
        # (e.g. from sampling noise in UMONs) are clamped.
        arr = np.minimum.accumulate(arr)
        self._values = arr
        self._step = float(step)
        self._fingerprint: Optional[bytes] = None

    # -- basic accessors ---------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The sampled miss rates (read-only view)."""
        v = self._values.view()
        v.flags.writeable = False
        return v

    @property
    def step(self) -> float:
        """Allocation distance between adjacent samples."""
        return self._step

    @property
    def num_points(self) -> int:
        """Number of samples in the curve."""
        return int(self._values.size)

    @property
    def fingerprint(self) -> bytes:
        """Content digest of the curve (step + samples), lazily cached.

        Curves are immutable after construction, so the digest is a
        stable identity usable as a memoisation key — two curves with
        equal fingerprints interpolate identically everywhere. The
        placement memo and :func:`combine_curves` cache key on this.
        """
        fp = self._fingerprint
        if fp is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(self._step).encode())
            digest.update(self._values.tobytes())
            fp = digest.digest()
            self._fingerprint = fp
        return fp

    @property
    def max_size(self) -> float:
        """Largest allocation covered by the curve."""
        return (self.num_points - 1) * self._step

    def __len__(self) -> int:
        return self.num_points

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MissCurve):
            return NotImplemented
        return self._step == other._step and np.array_equal(
            self._values, other._values
        )

    def __repr__(self) -> str:
        return (
            f"MissCurve(points={self.num_points}, step={self._step}, "
            f"range=[{self._values[-1]:.3f}, {self._values[0]:.3f}])"
        )

    # -- evaluation ---------------------------------------------------------

    def misses_at(self, size: float) -> float:
        """Miss rate at an allocation of ``size`` units (linear interp).

        Sizes beyond the sampled range saturate at the last sample; negative
        sizes are an error.
        """
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        pos = size / self._step
        if pos >= self.num_points - 1:
            return float(self._values[-1])
        lo = int(pos)
        frac = pos - lo
        return float(
            self._values[lo] * (1.0 - frac) + self._values[lo + 1] * frac
        )

    def misses_at_many(self, sizes: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`misses_at` over an array of sizes.

        Bit-identical to calling :meth:`misses_at` per element (same
        IEEE operations in the same order) — the hot loops in
        :func:`combine_curves` and the Lookahead scans rely on that.
        """
        pos = np.asarray(sizes, dtype=float) / self._step
        if np.any(pos < 0):
            raise ValueError("allocation size must be non-negative")
        n = self.num_points
        saturated = pos >= n - 1
        lo = pos.astype(np.int64)
        np.clip(lo, 0, n - 2, out=lo)
        frac = pos - lo
        out = self._values[lo] * (1.0 - frac) + self._values[lo + 1] * frac
        out[saturated] = self._values[-1]
        return out

    def marginal_utility(self, size: float, delta: float) -> float:
        """Misses avoided per unit of cache by growing ``size`` by ``delta``.

        This is the quantity the Lookahead algorithm maximises.
        """
        if delta <= 0:
            raise ValueError("delta must be positive")
        return (self.misses_at(size) - self.misses_at(size + delta)) / delta

    # -- transformations ----------------------------------------------------

    def convex_hull(self) -> "MissCurve":
        """Lower convex hull of the curve.

        The paper approximates DRRIP's miss curve by the convex hull of
        LRU's miss curve, which can be measured much more cheaply
        (Sec. IV-A). The hull is computed over (size, misses) points with a
        monotone-chain scan and resampled at the original sample positions.
        """
        n = self.num_points
        xs = np.arange(n, dtype=float) * self._step
        ys = self._values
        # Monotone chain over the lower hull: keep points where the slope
        # sequence is non-decreasing.
        hull: List[int] = []
        for i in range(n):
            while len(hull) >= 2:
                a, b = hull[-2], hull[-1]
                # Cross product of (b-a) x (i-a); <= 0 means b is above or on
                # the segment a--i, so b is not on the lower hull.
                cross = (xs[b] - xs[a]) * (ys[i] - ys[a]) - (
                    ys[b] - ys[a]
                ) * (xs[i] - xs[a])
                if cross <= 0:
                    hull.pop()
                else:
                    break
            hull.append(i)
        hx = xs[hull]
        hy = ys[hull]
        resampled = np.interp(xs, hx, hy)
        return MissCurve(resampled, self._step)

    def scaled(self, factor: float) -> "MissCurve":
        """Curve with all miss rates multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return MissCurve(self._values * factor, self._step)

    def resampled(self, num_points: int, step: float) -> "MissCurve":
        """Resample the curve onto a new uniform grid."""
        if num_points < 2:
            raise ValueError("need at least two points")
        old_x = np.arange(self.num_points, dtype=float) * self._step
        new_x = np.arange(num_points, dtype=float) * step
        return MissCurve(np.interp(new_x, old_x, self._values), step)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def flat(value: float, num_points: int, step: float = 1.0) -> "MissCurve":
        """A cache-insensitive (constant) miss curve."""
        return MissCurve(np.full(num_points, float(value)), step)

    @staticmethod
    def from_samples(
        sizes: Sequence[float], misses: Sequence[float], num_points: int,
        step: float,
    ) -> "MissCurve":
        """Build a curve from irregular (size, misses) samples."""
        sizes = np.asarray(sizes, dtype=float)
        misses = np.asarray(misses, dtype=float)
        if sizes.shape != misses.shape or sizes.size < 2:
            raise ValueError("need matching size/miss arrays of length >= 2")
        order = np.argsort(sizes)
        grid = np.arange(num_points, dtype=float) * step
        return MissCurve(np.interp(grid, sizes[order], misses[order]), step)


def chain_argbest(
    utils: np.ndarray, best_util: float, eps: float = 1e-15
) -> Tuple[float, int]:
    """Replay the scalar tie-break chain over ``utils`` exactly.

    The greedy placers pick candidates with the sequential rule
    ``if util > best_util + eps: accept``. That chain cannot be replaced
    by a plain argmax (the accepted maximum can trail the true prefix
    maximum by up to ``eps`` per rejection), but every *accepted*
    candidate is provably a strict prefix-max record: any value ``v``
    seen before an accepted ``u`` satisfies ``v <= accepted_max + eps <
    u``. So we find the strict records vectorised and replay the exact
    python comparison only over those few indices.

    Returns ``(new_best_util, accepted_index)`` where the index is the
    last accepted candidate, or -1 if nothing beat ``best_util``.
    """
    if utils.size == 0:
        return best_util, -1
    running = np.maximum.accumulate(utils)
    prev = np.empty_like(running)
    prev[0] = -np.inf
    prev[1:] = running[:-1]
    best_idx = -1
    for i in np.flatnonzero(utils > prev).tolist():
        util = float(utils[i])
        if util > best_util + eps:
            best_util = util
            best_idx = i
    return best_util, best_idx


#: Content-keyed cache for :func:`combine_curves`. The epoch loop
#: recombines the same static VM curves every reconfiguration; keying on
#: curve fingerprints makes that free while staying correct for drifting
#: (UMON-measured) curves, which produce new fingerprints.
_COMBINE_CACHE: "OrderedDict[Tuple[bytes, ...], MissCurve]" = OrderedDict()
_COMBINE_CACHE_MAX = 256


def combine_curves(curves: Iterable[MissCurve]) -> MissCurve:
    """Combined miss curve of applications sharing one allocation.

    Follows the partitioned-sharing model of Whirlpool [61, Appendix B]:
    for each total size ``s``, the optimal split of ``s`` among the apps
    (the one a utility-maximising partitioner would pick) determines the
    combined miss rate. We compute it with a greedy marginal-utility sweep,
    which is exact for convex curves and a good approximation otherwise.

    All input curves must share the same ``step``; the result covers the
    same number of points as the longest input. Note the range caveat:
    beyond its last sample the combined curve *saturates*, even though
    the true combination of N apps keeps improving up to N x each
    curve's range — so build input curves to span the full capacity you
    will evaluate (the placement layer samples every curve across the
    whole LLC for this reason).
    """
    curve_list = list(curves)
    if not curve_list:
        raise ValueError("need at least one curve")
    step = curve_list[0].step
    if any(c.step != step for c in curve_list):
        raise ValueError("all curves must share the same step")
    key = tuple(c.fingerprint for c in curve_list)
    cached = _COMBINE_CACHE.get(key)
    if cached is not None:
        _COMBINE_CACHE.move_to_end(key)
        return cached
    num_points = max(c.num_points for c in curve_list)

    # Lookahead allocation: repeatedly grant the multi-step extension with
    # the highest *average* marginal utility. Plain greedy would stall on
    # cliff-shaped curves (no gain until the working set fits), flattening
    # the combined curve; scanning horizons walks through cliffs, exactly
    # as UCP's Lookahead does. combined[k] = total misses with k units
    # split this way; intermediate points within a multi-step grant are
    # filled by advancing the chosen app's allocation stepwise.
    n_apps = len(curve_list)
    allocs = [0.0] * n_apps
    # Per-app miss rate at the current allocation: only the granted
    # app's entry changes per step, so the O(apps) recomputation of the
    # scalar code collapses to one interpolation plus a list sum (same
    # values summed in the same order — bit-identical).
    current = [c.misses_at(0.0) for c in curve_list]
    combined = np.empty(num_points, dtype=float)
    combined[0] = sum(current)
    granted = 0
    while granted < num_points - 1:
        remaining = num_points - 1 - granted
        best_app = -1
        best_util = -1.0
        best_k = 1
        deltas = np.arange(1, remaining + 1, dtype=float) * step
        for i, curve in enumerate(curve_list):
            # Vectorised horizon scan; chain_argbest replays the exact
            # sequential tie-break of the scalar code.
            utils = (
                current[i] - curve.misses_at_many(allocs[i] + deltas)
            ) / deltas
            best_util, idx = chain_argbest(utils, best_util)
            if idx >= 0:
                best_app = i
                best_k = idx + 1
        if best_app < 0 or best_util <= 0:
            # Nobody benefits further: the curve is flat from here on.
            combined[granted + 1 :] = combined[granted]
            break
        curve = curve_list[best_app]
        for _ in range(best_k):
            allocs[best_app] += step
            current[best_app] = curve.misses_at(allocs[best_app])
            granted += 1
            combined[granted] = sum(current)
    result = MissCurve(combined, step)
    _COMBINE_CACHE[key] = result
    while len(_COMBINE_CACHE) > _COMBINE_CACHE_MAX:
        _COMBINE_CACHE.popitem(last=False)
    return result
