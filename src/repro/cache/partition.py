"""Way-partitioning (Intel CAT-style) for a single LLC bank.

A :class:`WayPartitioner` assigns each partition a contiguous *number of
ways*; on a fill, the replacement victim is chosen only among lines owned
by the filling partition (plus unowned lines), which is how CAT-style
allocation enforcement behaves. Partitions defend conflict attacks
(attacker evictions cannot touch victim ways) but — as the paper stresses —
do nothing about bank ports or shared replacement state.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["WayPartitioner"]


class WayPartitioner:
    """Tracks per-partition way quotas within one bank.

    Quotas are in ways. The sum of quotas must never exceed the bank's
    associativity. Partition id ``None`` denotes unpartitioned space that
    anyone may use.
    """

    def __init__(self, num_ways: int):
        if num_ways < 1:
            raise ValueError("bank must have at least one way")
        self._num_ways = num_ways
        self._quota: Dict[object, int] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every quota change.

        Banks cache quota lookups in interned-partition-id form; the
        version lets them invalidate those caches without subscribing to
        the partitioner.
        """
        return self._version

    @property
    def num_ways(self) -> int:
        """The bank's associativity."""
        return self._num_ways

    @property
    def allocated_ways(self) -> int:
        """Total ways currently handed out to partitions."""
        return sum(self._quota.values())

    @property
    def free_ways(self) -> int:
        """Ways not assigned to any partition (shared space)."""
        return self._num_ways - self.allocated_ways

    def quota(self, partition: object) -> int:
        """Quota of ``partition`` (0 if it has none)."""
        return self._quota.get(partition, 0)

    def partitions(self) -> Dict[object, int]:
        """Snapshot of partition -> quota."""
        return dict(self._quota)

    def set_quota(self, partition: object, ways: int) -> None:
        """Assign ``partition`` a quota of ``ways`` ways.

        A quota of zero removes the partition. Raises if the new total
        would exceed the bank's associativity.
        """
        if ways < 0:
            raise ValueError("quota must be non-negative")
        new_total = self.allocated_ways - self.quota(partition) + ways
        if new_total > self._num_ways:
            raise ValueError(
                f"quota overflow: {new_total} ways requested, bank has "
                f"{self._num_ways}"
            )
        if ways == 0:
            self._quota.pop(partition, None)
        else:
            self._quota[partition] = ways
        self._version += 1

    def clear(self) -> None:
        """Remove all partitions."""
        self._quota.clear()
        self._version += 1

    def can_evict(
        self, filler: object, owner: Optional[object], owner_count: int
    ) -> bool:
        """May partition ``filler`` evict a line owned by ``owner``?

        ``owner_count`` is how many lines in the set ``filler`` currently
        owns. CAT semantics: a partitioned filler may evict its own lines
        or lines in unpartitioned space, but only if it is at or over its
        quota does it stay within it; below quota it may also claim
        invalid/unowned ways. An unpartitioned filler may only touch
        unpartitioned lines.
        """
        filler_quota = self.quota(filler)
        if filler_quota == 0:
            # Filler lives in the shared (unpartitioned) space.
            return owner is None or self.quota(owner) == 0
        if owner == filler:
            return True
        if owner is None or self.quota(owner) == 0:
            # Unowned / shared line: claimable while under quota.
            return owner_count < filler_quota
        return False
