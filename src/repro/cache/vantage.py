"""Vantage partitioning (Sanchez & Kozyrakis, ISCA 2011).

Jigsaw's original evaluation used Vantage partitioning and LRU inside
each bank; the paper's evaluation swaps in way-partitioning and DRRIP
"to better reflect production systems" (Sec. IV-A). We implement both so
the swap is an experiment, not an assumption.

Vantage partitions by *size targets* rather than ways: the cache is
split into a large **managed region** and a small **unmanaged region**
(a few percent of capacity). Insertions go to the managed region tagged
with their partition; when a partition exceeds its target, its lines
are demoted with increasing *aperture* (probability of eviction when
scanned), so partition sizes track targets closely without constraining
which ways a partition may use — i.e. no associativity loss, and many
more partitions than ways.

This model captures Vantage's behavioural contract (size tracking,
full associativity, bounded interference) with a simplified demotion
mechanism: on each fill the replacement scan considers candidates from
over-target partitions first, choosing within a partition by LRU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["VantageBank"]


@dataclass
class _Line:
    addr: int
    partition: object
    stamp: int


class VantageBank:
    """A fully associative bank model under Vantage partitioning.

    Full associativity is the point of Vantage (partitions are not
    pinned to ways), so the model tracks the bank as one pool of
    ``capacity_lines`` lines. ``unmanaged_fraction`` of capacity is the
    unmanaged region that absorbs churn.
    """

    def __init__(
        self,
        capacity_lines: int,
        unmanaged_fraction: float = 0.05,
        latency: int = 13,
    ):
        if capacity_lines < 1:
            raise ValueError("capacity must be at least one line")
        if not 0.0 <= unmanaged_fraction < 0.5:
            raise ValueError("unmanaged fraction must be in [0, 0.5)")
        self.capacity_lines = capacity_lines
        self.unmanaged_lines = int(capacity_lines * unmanaged_fraction)
        self.managed_lines = capacity_lines - self.unmanaged_lines
        self.latency = latency
        self._lines: Dict[int, _Line] = {}
        self._targets: Dict[object, int] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.demotions = 0

    # -- configuration ---------------------------------------------------------------

    def set_target(self, partition: object, lines: int) -> None:
        """Set a partition's size target (in lines).

        Targets may be any granularity — Vantage's advantage over
        way-partitioning. The sum of targets must fit in the managed
        region.
        """
        if lines < 0:
            raise ValueError("target must be non-negative")
        new_total = (
            sum(self._targets.values())
            - self._targets.get(partition, 0)
            + lines
        )
        if new_total > self.managed_lines:
            raise ValueError(
                f"targets total {new_total} lines exceed managed "
                f"region of {self.managed_lines}"
            )
        if lines == 0:
            self._targets.pop(partition, None)
        else:
            self._targets[partition] = lines

    def target(self, partition: object) -> int:
        """The partition's size target in lines (0 if unset)."""
        return self._targets.get(partition, 0)

    def occupancy(self, partition: object) -> int:
        """Lines currently held by the partition."""
        return sum(
            1 for line in self._lines.values()
            if line.partition == partition
        )

    # -- the access path ---------------------------------------------------------------

    def _overflow(self, partition: object) -> int:
        """Lines above target (candidates for demotion)."""
        return self.occupancy(partition) - self.target(partition)

    def _choose_victim(self, filler: object) -> int:
        """Pick the address to evict for a fill by ``filler``.

        Priority order, mirroring Vantage's aperture mechanism:
        (1) the most over-target partition's LRU line — demotion keeps
        partitions at their targets; (2) if nobody is over target (the
        unmanaged region absorbed the churn), the globally LRU line of
        the filler itself, else the global LRU.
        """
        over: List[Tuple[int, object]] = [
            (self._overflow(p), p)
            for p in set(
                line.partition for line in self._lines.values()
            )
        ]
        over.sort(key=lambda t: (-t[0], str(t[1])))
        if over and over[0][0] > 0:
            victim_partition = over[0][1]
            self.demotions += 1
            return min(
                (
                    line for line in self._lines.values()
                    if line.partition == victim_partition
                ),
                key=lambda line: line.stamp,
            ).addr
        own = [
            line for line in self._lines.values()
            if line.partition == filler
        ]
        pool = own if own else list(self._lines.values())
        return min(pool, key=lambda line: line.stamp).addr

    def access(self, line_addr: int, partition: object = None) -> bool:
        """Access a line; returns True on hit. Fills on miss."""
        self._clock += 1
        line = self._lines.get(line_addr)
        if line is not None:
            line.stamp = self._clock
            self.hits += 1
            return True
        self.misses += 1
        if len(self._lines) >= self.capacity_lines:
            victim = self._choose_victim(partition)
            del self._lines[victim]
        self._lines[line_addr] = _Line(
            addr=line_addr, partition=partition, stamp=self._clock
        )
        return False

    def contains(self, line_addr: int) -> bool:
        """Whether the bank currently holds ``line_addr``."""
        return line_addr in self._lines

    def resident_partitions(self) -> set:
        """Partitions with at least one resident line."""
        return {
            line.partition for line in self._lines.values()
            if line.partition is not None
        }

    def invalidate_partition(self, partition: object) -> int:
        """Drop all of a partition's lines; returns the count."""
        addrs = [
            a for a, line in self._lines.items()
            if line.partition == partition
        ]
        for a in addrs:
            del self._lines[a]
        return len(addrs)
