"""Utility monitors (UMONs): hardware miss-curve profiling.

A UMON (Qureshi & Patt, MICRO 2006; extended to geometric sampling by
Jigsaw/Talus) samples a fraction of a virtual cache's accesses into a
small tag array managed with LRU, and counts hits per recency position.
The hit histogram yields the miss curve: misses(w ways) = accesses -
hits in positions 0..w-1.

The paper's hardware samples ~1% of accesses and stores 8 KB of UMON
state per tile; we reproduce the mechanism, with the sampling rate and
number of monitored ways configurable.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .misscurve import MissCurve

__all__ = ["Umon"]


class Umon:
    """A sampled LRU tag array that produces miss curves.

    ``num_ways`` recency positions are monitored across ``num_sets``
    sampled sets. An access is sampled when
    ``hash(line) % sample_period == 0``, decoupling sampling from the
    access stream's own structure.
    """

    def __init__(
        self,
        num_ways: int = 32,
        num_sets: int = 32,
        sample_period: int = 100,
    ):
        if num_ways < 1 or num_sets < 1:
            raise ValueError("need at least one way and one set")
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.num_ways = num_ways
        self.num_sets = num_sets
        self.sample_period = sample_period
        # tags[set] is an LRU-ordered list, most recent first.
        self._tags: List[List[int]] = [[] for _ in range(num_sets)]
        self.hit_counts = np.zeros(num_ways, dtype=np.int64)
        self.miss_count = 0
        self.sampled_accesses = 0
        self.total_accesses = 0

    @staticmethod
    def _mix(line_addr: int) -> int:
        """Cheap deterministic hash so sampling is address-based."""
        x = line_addr & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCD
        x &= 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53
        x &= 0xFFFFFFFFFFFFFFFF
        return x ^ (x >> 33)

    def access(self, line_addr: int) -> None:
        """Record one access (sampled internally)."""
        self.total_accesses += 1
        h = self._mix(line_addr)
        if h % self.sample_period != 0:
            return
        self.sampled_accesses += 1
        set_idx = (h // self.sample_period) % self.num_sets
        tags = self._tags[set_idx]
        try:
            pos = tags.index(line_addr)
        except ValueError:
            pos = -1
        if pos >= 0:
            self.hit_counts[pos] += 1
            tags.pop(pos)
        else:
            self.miss_count += 1
            if len(tags) >= self.num_ways:
                tags.pop()
        tags.insert(0, line_addr)

    def miss_curve(
        self, step: float = 1.0, kilo_instructions: Optional[float] = None
    ) -> MissCurve:
        """Miss curve over allocations of 0..num_ways way-equivalents.

        Point ``w`` estimates the misses the monitored stream would incur
        with ``w`` ways. If ``kilo_instructions`` is given, the curve is
        normalised to MPKI; otherwise it is in sampled-access units scaled
        back up by the sampling period.
        """
        cumulative_hits = np.concatenate(
            ([0], np.cumsum(self.hit_counts))
        )
        total = self.sampled_accesses
        misses = (total - cumulative_hits) * float(self.sample_period)
        if kilo_instructions is not None:
            if kilo_instructions <= 0:
                raise ValueError("kilo_instructions must be positive")
            misses = misses / kilo_instructions
        return MissCurve(misses, step)

    def reset(self) -> None:
        """Clear counters but keep the sampled tag state warm."""
        self.hit_counts[:] = 0
        self.miss_count = 0
        self.sampled_accesses = 0
        self.total_accesses = 0
