"""A set-associative LLC bank with way-partitioning and limited ports.

The bank is the unit of everything in this paper: Jumanji's security
guarantee is "untrusted VMs never share a bank", the port attack is
queueing at a bank's ports, and performance leakage flows through the
bank's shared DRRIP state. This module models all three surfaces:

* content (tags + partition-constrained replacement),
* ports (a busy-until timestamp per port, exposing queueing delay),
* replacement state (shared policy object, e.g. DRRIP set-dueling).

Implementation notes (the array-backed fast path)
-------------------------------------------------
The original implementation kept ``tags[set][way]`` / ``owners[set][way]``
as nested Python lists and scanned them on every access; ``occupancy``
and ``resident_partitions`` were O(sets x ways) scans. This version is
bit-identical in behaviour (same hits, misses, evictions, victim ways,
port waits, and DRRIP PSEL trajectory — property- and golden-tested
against the frozen copy in ``repro.sim.reference``) but restructures the
state for speed:

* tags and owners live in *flat* arrays indexed ``set * ways + way``,
  with a ``bytearray`` validity mask and a line -> slot hash map, so
  lookup is O(1) instead of an O(ways) scan;
* partitions are interned to small integer ids, and per-set / per-bank
  line counts are maintained incrementally on fill, eviction, and
  invalidation, so quota checks, ``occupancy`` and
  ``resident_partitions`` are O(1) counter reads;
* partition quotas are cached as an id-indexed list, invalidated via the
  :class:`~repro.cache.partition.WayPartitioner` version counter;
* the batched trace simulator calls :meth:`_access_core` directly,
  skipping the per-access :class:`AccessResult` allocation.

Partition objects must be hashable (they are interned in dicts); in
practice they are ints, strings, or ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .partition import WayPartitioner
from .replacement import ReplacementPolicy, make_policy

__all__ = ["AccessResult", "CacheBank"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one bank access.

    ``port_wait`` is the number of cycles the access queued for a bank
    port; ``finish_time`` includes the bank's access latency.
    """

    hit: bool
    set_idx: int
    way: Optional[int]
    evicted_owner: Optional[object]
    port_wait: int
    finish_time: int


class CacheBank:
    """One LLC bank: ``num_sets`` x ``num_ways`` lines with few ports.

    Addresses are line addresses (already shifted by the line-size bits).
    Each line records the *partition* that owns it, so CAT-style quota
    enforcement and the attacker-visibility analysis can both inspect
    ownership.
    """

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        latency: int = 13,
        num_ports: int = 1,
        policy: str = "drrip",
    ):
        if num_sets < 1 or num_ways < 1:
            raise ValueError("need at least one set and one way")
        if num_ports < 1:
            raise ValueError("bank needs at least one port")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.latency = latency
        self.num_ports = num_ports
        self.policy: ReplacementPolicy = make_policy(
            policy, num_sets, num_ways
        )
        self.partitioner = WayPartitioner(num_ways)
        num_slots = num_sets * num_ways
        # Flat tag/owner arrays indexed set*ways + way. A slot is invalid
        # iff its tag is None (mirrored in the _valid mask); invalid
        # slots always carry owner id 0 (= partition None).
        self._tag: List[Optional[int]] = [None] * num_slots
        self._ownid: List[int] = [0] * num_slots
        self._valid = bytearray(num_slots)
        self._slot_of: Dict[int, int] = {}
        # Partition interning: id 0 is reserved for None (unowned).
        self._pobj: List[object] = [None]
        self._pid_of: Dict[object, int] = {None: 0}
        # _own_slots[pid] counts slots whose owner id is pid; for pid 0
        # this includes invalid slots, matching the original "owner is
        # None" scan semantics. _set_cnt[set][pid] is the same count
        # restricted to one set (the owner_count quota input).
        self._own_slots: List[int] = [num_slots]
        self._set_cnt: List[List[int]] = [
            [num_ways] for _ in range(num_sets)
        ]
        # Quota cache (partition-id indexed), keyed by partitioner version.
        self._quota_version = -1
        self._quota_by_pid: List[int] = [0]
        self._has_quotas = False
        self._all_ways: List[int] = list(range(num_ways))
        # Each port is modelled by the cycle at which it next becomes free.
        self._port_free: List[int] = [0] * num_ports
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.port_conflicts = 0
        self.total_port_wait = 0

    # -- address mapping ------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        """Set index of a line address within this bank."""
        return line_addr % self.num_sets

    # -- legacy views (kept for tests and external inspection) ----------------

    @property
    def _tags(self) -> List[List[Optional[int]]]:
        """``tags[set][way]`` view of the flat tag array (a copy)."""
        w = self.num_ways
        return [
            self._tag[base : base + w]
            for base in range(0, self.num_sets * w, w)
        ]

    @property
    def _owners(self) -> List[List[Optional[object]]]:
        """``owners[set][way]`` view of the owner ids (a copy)."""
        w = self.num_ways
        pobj = self._pobj
        return [
            [pobj[i] for i in self._ownid[base : base + w]]
            for base in range(0, self.num_sets * w, w)
        ]

    # -- port arbitration ------------------------------------------------------

    def _acquire_port(self, now: int) -> Tuple[int, int]:
        """Claim the earliest-free port at time ``now``.

        Returns ``(wait_cycles, start_time)``. The port is held for the
        bank's access latency, which is what creates the queueing delay the
        port attack observes.
        """
        ports = self._port_free
        idx = 0
        if self.num_ports > 1:
            idx = min(range(self.num_ports), key=ports.__getitem__)
        free = ports[idx]
        start = free if free > now else now
        wait = start - now
        ports[idx] = start + self.latency
        if wait > 0:
            self.port_conflicts += 1
            self.total_port_wait += wait
        return wait, start

    # -- partition interning ---------------------------------------------------

    def _intern(self, partition: object) -> int:
        """Small-integer id for a partition object (0 is None)."""
        pid = self._pid_of.get(partition)
        if pid is None:
            pid = len(self._pobj)
            self._pid_of[partition] = pid
            self._pobj.append(partition)
            self._own_slots.append(0)
            for cnt in self._set_cnt:
                cnt.append(0)
            self._quota_version = -1  # quota cache must grow too
        return pid

    def _refresh_quotas(self) -> None:
        """Rebuild the id-indexed quota cache from the partitioner."""
        quotas = self.partitioner.partitions()
        for p in quotas:
            self._intern(p)
        by_pid = [0] * len(self._pobj)
        for p, q in quotas.items():
            by_pid[self._pid_of[p]] = q
        self._quota_by_pid = by_pid
        self._has_quotas = bool(quotas)
        self._quota_version = self.partitioner.version

    # -- lookup/fill -----------------------------------------------------------

    def _find(self, set_idx: int, line_addr: int) -> Optional[int]:
        slot = self._slot_of.get(line_addr)
        if slot is None or slot // self.num_ways != set_idx:
            return None
        return slot - set_idx * self.num_ways

    def _pick_victim(
        self, set_idx: int, base: int, pid: int
    ) -> Tuple[int, int]:
        """Choose the fill way for partition id ``pid`` in ``set_idx``.

        Returns ``(way, evicted_pid)`` where ``evicted_pid`` is -1 when
        an invalid way is claimed (no eviction). Mirrors the original
        ``_eviction_candidates`` + invalid-preference logic exactly,
        including the rare at-quota fallbacks.
        """
        ways = self.num_ways
        valid = self._valid
        inv = valid.find(0, base, base + ways)
        if not self._has_quotas:
            # No quotas programmed: every valid way is a candidate and
            # invalid ways are preferred (the quota == 0 branch).
            if inv >= 0:
                return inv - base, -1
            victim = self.policy.victim(set_idx, self._all_ways)
            self.evictions += 1
            return victim, self._ownid[base + victim]
        quotas = self._quota_by_pid
        filler_quota = quotas[pid]
        owner_count = self._set_cnt[set_idx][pid]
        if inv >= 0 and (filler_quota == 0 or owner_count < filler_quota):
            return inv - base, -1
        ownid = self._ownid
        candidates = []
        if filler_quota == 0:
            # Unpartitioned filler: may evict unowned/shared lines only.
            for w in range(ways):
                s = base + w
                if valid[s]:
                    o = ownid[s]
                    if o == 0 or quotas[o] == 0:
                        candidates.append(w)
        else:
            under = owner_count < filler_quota
            for w in range(ways):
                s = base + w
                if valid[s]:
                    o = ownid[s]
                    if o == pid or (under and (o == 0 or quotas[o] == 0)):
                        candidates.append(w)
        if candidates:
            victim = self.policy.victim(set_idx, candidates)
            self.evictions += 1
            return victim, ownid[base + victim]
        # A partition at quota with no evictable lines in this set must
        # still make progress: fall back to its own lines, else any way.
        own = [w for w in range(ways) if ownid[base + w] == pid]
        if own:
            # pid 0 "owns" invalid ways; claiming one is not an eviction
            # (the original returned them as candidates and the
            # invalid-preference in access() picked the first).
            for w in own:
                if not valid[base + w]:
                    return w, -1
            victim = self.policy.victim(set_idx, own)
            self.evictions += 1
            return victim, ownid[base + victim]
        if inv >= 0:
            return inv - base, -1
        victim = self.policy.victim(set_idx, self._all_ways)
        self.evictions += 1
        return victim, ownid[base + victim]

    def _access_core(
        self, line_addr: int, partition: object, now: int
    ) -> Tuple[bool, int, int, int, int, int]:
        """One access without the :class:`AccessResult` wrapper.

        Returns ``(hit, set_idx, way, evicted_pid, port_wait, start)``
        with ``evicted_pid`` -1 when nothing was evicted. This is the
        kernel the batched trace simulator drives directly.
        """
        ports = self._port_free
        if self.num_ports == 1:
            free = ports[0]
            start = free if free > now else now
            ports[0] = start + self.latency
        else:
            idx = min(range(self.num_ports), key=ports.__getitem__)
            free = ports[idx]
            start = free if free > now else now
            ports[idx] = start + self.latency
        wait = start - now
        if wait > 0:
            self.port_conflicts += 1
            self.total_port_wait += wait
        set_idx = line_addr % self.num_sets
        slot = self._slot_of.get(line_addr)
        if slot is not None:
            way = slot - set_idx * self.num_ways
            self.hits += 1
            self.policy.on_hit(set_idx, way)
            return True, set_idx, way, -1, wait, start
        # Miss path: notify the policy (set-dueling counts misses), choose
        # a victim within partition constraints, install.
        self.misses += 1
        self.policy.on_miss(set_idx)
        pid = self._pid_of.get(partition)
        if pid is None:
            pid = self._intern(partition)
        if self._quota_version != self.partitioner.version:
            self._refresh_quotas()
        base = set_idx * self.num_ways
        victim, evicted_pid = self._pick_victim(set_idx, base, pid)
        slot = base + victim
        old_tag = self._tag[slot]
        if old_tag is not None:
            del self._slot_of[old_tag]
        else:
            self._valid[slot] = 1
        old_pid = self._ownid[slot]
        if old_pid != pid:
            self._ownid[slot] = pid
            self._own_slots[old_pid] -= 1
            self._own_slots[pid] += 1
            cnt = self._set_cnt[set_idx]
            cnt[old_pid] -= 1
            cnt[pid] += 1
        self._tag[slot] = line_addr
        self._slot_of[line_addr] = slot
        self.policy.on_fill(set_idx, victim)
        return False, set_idx, victim, evicted_pid, wait, start

    def access(
        self, line_addr: int, partition: object = None, now: int = 0
    ) -> AccessResult:
        """Perform one access; returns hit/miss plus port-timing info.

        Misses install the line immediately (fill latency is accounted by
        the caller via the memory model; the bank only tracks content and
        port occupancy).
        """
        hit, set_idx, way, evicted_pid, wait, start = self._access_core(
            line_addr, partition, now
        )
        return AccessResult(
            hit=hit,
            set_idx=set_idx,
            way=way,
            evicted_owner=(
                self._pobj[evicted_pid] if evicted_pid >= 0 else None
            ),
            port_wait=wait,
            finish_time=start + self.latency,
        )

    # -- inspection / management -------------------------------------------------

    def contains(self, line_addr: int) -> bool:
        """Whether the bank currently holds ``line_addr``."""
        return line_addr in self._slot_of

    def occupancy(self, partition: object) -> int:
        """Number of lines currently owned by ``partition`` (O(1)).

        As in the original scan, ``partition=None`` counts unowned slots,
        which includes invalid ways.
        """
        pid = self._pid_of.get(partition)
        return self._own_slots[pid] if pid is not None else 0

    def resident_partitions(self) -> set:
        """All partitions with at least one line in the bank (O(#partitions))."""
        own = self._own_slots
        return {
            self._pobj[pid]
            for pid in range(1, len(own))
            if own[pid] > 0
        }

    def counters_match_scan(self) -> bool:
        """Audit: do the incremental counters match a full scan?

        Recomputes every per-set and per-bank ownership count from the
        flat tag/owner arrays and compares with the incrementally
        maintained values (used by the property tests; handy when
        debugging partition bookkeeping).
        """
        ways = self.num_ways
        own_slots = [0] * len(self._pobj)
        for set_idx in range(self.num_sets):
            base = set_idx * ways
            cnt = [0] * len(self._pobj)
            for w in range(ways):
                slot = base + w
                if (self._tag[slot] is None) != (not self._valid[slot]):
                    return False
                if self._tag[slot] is None and self._ownid[slot] != 0:
                    return False
                cnt[self._ownid[slot]] += 1
                own_slots[self._ownid[slot]] += 1
            if cnt != self._set_cnt[set_idx]:
                return False
        if own_slots != self._own_slots:
            return False
        expect_slots = {
            slot: tag
            for slot, tag in enumerate(self._tag)
            if tag is not None
        }
        return {s: t for t, s in self._slot_of.items()} == expect_slots

    def invalidate_partition(self, partition: object) -> int:
        """Invalidate all lines of ``partition`` (coherence walk / flush).

        Returns the number of lines invalidated. This is the "walk the
        array in the background" mechanism Jigsaw/Jumanji use when data
        placement changes, and the flush Jumanji performs when VMs must
        share a bank on context switch. (As in the original scan,
        ``partition=None`` also counts already-invalid ways.)
        """
        pid = self._pid_of.get(partition)
        if pid is None:
            return 0
        count = self._own_slots[pid]
        if count == 0:
            return 0
        ways = self.num_ways
        tag = self._tag
        ownid = self._ownid
        valid = self._valid
        remaining = count
        for slot in range(len(tag)):
            if ownid[slot] == pid:
                t = tag[slot]
                if t is not None:
                    del self._slot_of[t]
                    tag[slot] = None
                    valid[slot] = 0
                    if pid != 0:
                        ownid[slot] = 0
                        cnt = self._set_cnt[slot // ways]
                        cnt[pid] -= 1
                        cnt[0] += 1
                remaining -= 1
                if remaining == 0:
                    break
        if pid != 0:
            self._own_slots[0] += count
            self._own_slots[pid] = 0
        return count

    def flush(self) -> int:
        """Invalidate the whole bank; returns lines invalidated."""
        count = len(self._slot_of)
        num_slots = self.num_sets * self.num_ways
        self._tag = [None] * num_slots
        self._ownid = [0] * num_slots
        self._valid = bytearray(num_slots)
        self._slot_of.clear()
        self._own_slots = [num_slots] + [0] * (len(self._pobj) - 1)
        for cnt in self._set_cnt:
            for pid in range(len(cnt)):
                cnt[pid] = self.num_ways if pid == 0 else 0
        return count

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction/port counters (content kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.port_conflicts = 0
        self.total_port_wait = 0
