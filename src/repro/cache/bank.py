"""A set-associative LLC bank with way-partitioning and limited ports.

The bank is the unit of everything in this paper: Jumanji's security
guarantee is "untrusted VMs never share a bank", the port attack is
queueing at a bank's ports, and performance leakage flows through the
bank's shared DRRIP state. This module models all three surfaces:

* content (tags + partition-constrained replacement),
* ports (a busy-until timestamp per port, exposing queueing delay),
* replacement state (shared policy object, e.g. DRRIP set-dueling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .partition import WayPartitioner
from .replacement import ReplacementPolicy, make_policy

__all__ = ["AccessResult", "CacheBank"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one bank access.

    ``port_wait`` is the number of cycles the access queued for a bank
    port; ``finish_time`` includes the bank's access latency.
    """

    hit: bool
    set_idx: int
    way: Optional[int]
    evicted_owner: Optional[object]
    port_wait: int
    finish_time: int


class CacheBank:
    """One LLC bank: ``num_sets`` x ``num_ways`` lines with few ports.

    Addresses are line addresses (already shifted by the line-size bits).
    Each line records the *partition* that owns it, so CAT-style quota
    enforcement and the attacker-visibility analysis can both inspect
    ownership.
    """

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        latency: int = 13,
        num_ports: int = 1,
        policy: str = "drrip",
    ):
        if num_sets < 1 or num_ways < 1:
            raise ValueError("need at least one set and one way")
        if num_ports < 1:
            raise ValueError("bank needs at least one port")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.latency = latency
        self.num_ports = num_ports
        self.policy: ReplacementPolicy = make_policy(
            policy, num_sets, num_ways
        )
        self.partitioner = WayPartitioner(num_ways)
        # tags[set][way] = line address or None; owners[set][way] = partition.
        self._tags: List[List[Optional[int]]] = [
            [None] * num_ways for _ in range(num_sets)
        ]
        self._owners: List[List[Optional[object]]] = [
            [None] * num_ways for _ in range(num_sets)
        ]
        # Each port is modelled by the cycle at which it next becomes free.
        self._port_free: List[int] = [0] * num_ports
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.port_conflicts = 0
        self.total_port_wait = 0

    # -- address mapping ------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        """Set index of a line address within this bank."""
        return line_addr % self.num_sets

    # -- port arbitration ------------------------------------------------------

    def _acquire_port(self, now: int) -> Tuple[int, int]:
        """Claim the earliest-free port at time ``now``.

        Returns ``(wait_cycles, start_time)``. The port is held for the
        bank's access latency, which is what creates the queueing delay the
        port attack observes.
        """
        idx = min(range(self.num_ports), key=lambda i: self._port_free[i])
        start = max(now, self._port_free[idx])
        wait = start - now
        self._port_free[idx] = start + self.latency
        if wait > 0:
            self.port_conflicts += 1
            self.total_port_wait += wait
        return wait, start

    # -- lookup/fill -----------------------------------------------------------

    def _find(self, set_idx: int, line_addr: int) -> Optional[int]:
        tags = self._tags[set_idx]
        for way in range(self.num_ways):
            if tags[way] == line_addr:
                return way
        return None

    def _eviction_candidates(
        self, set_idx: int, partition: object
    ) -> List[int]:
        """Ways ``partition`` may fill into, honouring CAT quotas."""
        owners = self._owners[set_idx]
        tags = self._tags[set_idx]
        # Invalid ways are always fair game.
        invalid = [w for w in range(self.num_ways) if tags[w] is None]
        owner_count = sum(1 for o in owners if o == partition)
        candidates = [
            w
            for w in range(self.num_ways)
            if tags[w] is not None
            and self.partitioner.can_evict(partition, owners[w], owner_count)
        ]
        if invalid:
            # Prefer claiming an invalid way when allowed to grow.
            quota = self.partitioner.quota(partition)
            if quota == 0 or owner_count < quota:
                return invalid
        if candidates:
            return candidates
        # A partition at quota with no own lines in this set (skewed
        # distribution) must still make progress: fall back to its own
        # lines anywhere, else any line.
        own = [w for w in range(self.num_ways) if owners[w] == partition]
        if own:
            return own
        return invalid if invalid else list(range(self.num_ways))

    def access(
        self, line_addr: int, partition: object = None, now: int = 0
    ) -> AccessResult:
        """Perform one access; returns hit/miss plus port-timing info.

        Misses install the line immediately (fill latency is accounted by
        the caller via the memory model; the bank only tracks content and
        port occupancy).
        """
        port_wait, start = self._acquire_port(now)
        set_idx = self.set_index(line_addr)
        way = self._find(set_idx, line_addr)
        if way is not None:
            self.hits += 1
            self.policy.on_hit(set_idx, way)
            return AccessResult(
                hit=True,
                set_idx=set_idx,
                way=way,
                evicted_owner=None,
                port_wait=port_wait,
                finish_time=start + self.latency,
            )
        # Miss path: notify the policy (set-dueling counts misses), choose
        # a victim within partition constraints, install.
        self.misses += 1
        self.policy.on_miss(set_idx)
        candidates = self._eviction_candidates(set_idx, partition)
        evicted_owner: Optional[object] = None
        invalid = [w for w in candidates if self._tags[set_idx][w] is None]
        if invalid:
            victim = invalid[0]
        else:
            victim = self.policy.victim(set_idx, candidates)
            evicted_owner = self._owners[set_idx][victim]
            self.evictions += 1
        self._tags[set_idx][victim] = line_addr
        self._owners[set_idx][victim] = partition
        self.policy.on_fill(set_idx, victim)
        return AccessResult(
            hit=False,
            set_idx=set_idx,
            way=victim,
            evicted_owner=evicted_owner,
            port_wait=port_wait,
            finish_time=start + self.latency,
        )

    # -- inspection / management -------------------------------------------------

    def contains(self, line_addr: int) -> bool:
        """Whether the bank currently holds ``line_addr``."""
        return self._find(self.set_index(line_addr), line_addr) is not None

    def occupancy(self, partition: object) -> int:
        """Number of lines currently owned by ``partition``."""
        return sum(
            1
            for owners in self._owners
            for o in owners
            if o == partition
        )

    def resident_partitions(self) -> set:
        """All partitions with at least one line in the bank."""
        return {
            o for owners in self._owners for o in owners if o is not None
        }

    def invalidate_partition(self, partition: object) -> int:
        """Invalidate all lines of ``partition`` (coherence walk / flush).

        Returns the number of lines invalidated. This is the "walk the
        array in the background" mechanism Jigsaw/Jumanji use when data
        placement changes, and the flush Jumanji performs when VMs must
        share a bank on context switch.
        """
        count = 0
        for set_idx in range(self.num_sets):
            for way in range(self.num_ways):
                if self._owners[set_idx][way] == partition:
                    self._tags[set_idx][way] = None
                    self._owners[set_idx][way] = None
                    count += 1
        return count

    def flush(self) -> int:
        """Invalidate the whole bank; returns lines invalidated."""
        count = 0
        for set_idx in range(self.num_sets):
            for way in range(self.num_ways):
                if self._tags[set_idx][way] is not None:
                    count += 1
                self._tags[set_idx][way] = None
                self._owners[set_idx][way] = None
        return count

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction/port counters (content kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.port_conflicts = 0
        self.total_port_wait = 0
