"""The placement service: session registry, decisions, sweeps.

Transport-independent core of :mod:`repro.serve`. The HTTP layer is a
thin codec over this class, so tests (and any future transport) can
drive the exact service logic in-process.

A *session* is the online form of the paper's 100 ms loop: one
long-lived :class:`~repro.core.runtime.JumanjiRuntime` whose telemetry
comes over the wire instead of from the bundled queueing simulator.
Each ``decide`` call replays one epoch of Listing 1 — report the
posted latency samples to the feedback controller, reconfigure, return
the installed allocation as a :class:`~repro.serve.schema.Decision`.
Decisions are deterministic functions of (session spec, telemetry
history): the registry gives every session its own runtime and its own
lock, so interleaved tenants cannot perturb each other's controller
state — the concurrency-isolation test and the bench determinism gate
both lean on this.

Sweeps reuse the batch harness: ``start_sweep`` runs
:func:`repro.experiments.common.run_sweep` on a daemon thread through a
:class:`~repro.runner.SweepRunner`, journalling into the request's
``checkpoint`` path so a re-POSTed sweep resumes from completed cells.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional

from .. import obs
from ..config import ControllerConfig, SystemConfig
from ..core.designs import DESIGNS, make_design
from ..core.runtime import JumanjiRuntime
from ..errors import ConfigError, PayloadTooLarge, UnknownSession
from ..fleet.chip import chip_deadline_cycles, small_chip_config
from ..model.workload import WorkloadSpec, make_default_workload
from ..noc.mesh import MeshNoc
from ..workloads.mixes import base_app, random_batch_mix
from .schema import (
    CreateSessionRequest,
    Decision,
    SessionInfo,
    SweepRequest,
    SweepStatus,
    TelemetryRequest,
)

__all__ = ["PlacementService", "MAX_TELEMETRY_SAMPLES"]

#: Default bound on samples per telemetry POST (-> 413 when exceeded).
#: Generous: a real 100 ms epoch at the highest profiled QPS completes
#: ~2000 requests; ten times that still parses in microseconds.
MAX_TELEMETRY_SAMPLES = 20_000


def _small_chip_workload(
    req: CreateSessionRequest, config: SystemConfig
) -> WorkloadSpec:
    """One consolidated tenant on the fleet socket: LC + batch riders.

    Mirrors :class:`~repro.fleet.chip.TenantVM` — the session's single
    LC app on core 0 plus batch riders (drawn from ``mix_seed``) on the
    remaining cores, all one VM.
    """
    from ..config import VmSpec

    lc = req.lc_apps[0]
    riders = random_batch_mix(req.mix_seed)[: config.num_cores - 1]
    return WorkloadSpec(
        config=config,
        vms=[
            VmSpec(
                vm_id=0,
                cores=tuple(range(1 + len(riders))),
                lc_apps=(f"{lc}#0",),
                batch_apps=tuple(
                    f"{app}#b{j}" for j, app in enumerate(riders)
                ),
            )
        ],
        load=req.load,
    )


class _Session:
    """One registered tenant: spec + runtime + per-session lock."""

    def __init__(self, session_id: str, req: CreateSessionRequest):
        if req.design not in DESIGNS:
            raise ConfigError(
                f"unknown design {req.design!r}; choose from "
                f"{sorted(DESIGNS)}"
            )
        self.session_id = session_id
        self.request = req
        self.lock = threading.Lock()
        self.epoch = 0
        if req.chip == "small":
            self.config = small_chip_config()
            self.workload = _small_chip_workload(req, self.config)
        else:
            self.config = SystemConfig()
            self.workload = make_default_workload(
                list(req.lc_apps),
                mix_seed=req.mix_seed,
                load=req.load,
            )
        self.design = make_design(req.design)
        self.noc = MeshNoc(self.config)
        initial_lc_mb = (
            self.config.llc_size_mb * ControllerConfig().panic_fraction
        )
        self.runtime = JumanjiRuntime(
            self.design,
            self.config,
            context_builder=lambda sizes: self.workload.build_context(
                dict(sizes), self.noc
            ),
            initial_lc_size_mb=initial_lc_mb,
            seed=req.seed,
            memoize_placement=True,
        )
        self.deadlines: Dict[str, float] = {}
        for app in self.workload.lc_apps:
            deadline = chip_deadline_cycles(base_app(app), self.config)
            self.deadlines[app] = deadline
            self.runtime.register_lc_app(app, deadline)

    def info(self) -> SessionInfo:
        return SessionInfo(
            session_id=self.session_id,
            design=self.request.design,
            lc_apps=self.request.lc_apps,
            lc_instances=tuple(self.workload.lc_apps),
            deadlines=dict(self.deadlines),
            load=self.request.load,
            mix_seed=self.request.mix_seed,
            chip=self.request.chip,
            seed=self.request.seed,
            epoch=self.epoch,
        )

    def decide(self, telemetry: TelemetryRequest) -> Decision:
        """One epoch: absorb telemetry, reconfigure, describe it."""
        with self.lock:
            for app in sorted(telemetry.latencies):
                if app not in self.deadlines:
                    raise ConfigError(
                        f"unknown LC instance {app!r} for session "
                        f"{self.session_id}; expected one of "
                        f"{sorted(self.deadlines)}"
                    )
                if self.design.uses_feedback:
                    self.runtime.report_latencies(
                        app, list(telemetry.latencies[app])
                    )
            with obs.span(
                "serve.decide",
                session=self.session_id,
                epoch=self.epoch,
            ):
                record = self.runtime.reconfigure()
            self.epoch = record.epoch + 1
            alloc = record.allocation
            return Decision(
                session_id=self.session_id,
                epoch=record.epoch,
                lat_sizes={
                    a: float(s) for a, s in record.lat_sizes.items()
                },
                allocation={
                    str(bank): {
                        a: float(mb)
                        for a, mb in sorted(
                            alloc.allocs.get(bank, {}).items()
                        )
                    }
                    for bank in sorted(alloc.allocs)
                },
                shared_batch=tuple(sorted(alloc.shared_batch)),
                invalidated_lines=int(record.invalidated_lines),
                degraded=bool(record.degraded),
                memo_hit=bool(record.memo_hit),
            )


class _Sweep:
    """Bookkeeping for one background sweep thread."""

    def __init__(self, sweep_id: str, req: SweepRequest):
        self.sweep_id = sweep_id
        self.request = req
        self.lock = threading.Lock()
        self.state = "running"
        self.error: Optional[str] = None
        self.completed = 0
        self.gmean_speedups: Dict[str, float] = {}
        self.thread: Optional[threading.Thread] = None

    def run(self) -> None:
        from ..experiments.common import run_sweep
        from ..runner import SweepCheckpoint, SweepRunner

        req = self.request
        try:
            checkpoint = (
                SweepCheckpoint(req.checkpoint)
                if req.checkpoint
                else None
            )
            runner = SweepRunner(
                jobs=req.jobs, checkpoint=checkpoint
            )
            result = run_sweep(
                designs=req.designs,
                lc_workloads=req.lc_workloads,
                loads=req.loads,
                mixes=req.mixes,
                epochs=req.epochs,
                runner=runner,
            )
            speedups = {
                design: result.gmean_speedup(design)
                for design in result.designs()
            }
            with self.lock:
                self.completed = len(result.outcomes)
                self.gmean_speedups = speedups
                self.state = "done"
            obs.counter_inc("serve.sweeps_done")
        except Exception as exc:  # surfaced through SweepStatus
            with self.lock:
                self.state = "failed"
                self.error = f"{type(exc).__name__}: {exc}"
            obs.emit(
                "serve.sweep_failed",
                sweep_id=self.sweep_id,
                error=str(exc),
            )

    def status(self) -> SweepStatus:
        with self.lock:
            return SweepStatus(
                sweep_id=self.sweep_id,
                state=self.state,
                completed=self.completed,
                total=self.request.total_cells,
                error=self.error,
                gmean_speedups=dict(self.gmean_speedups),
            )


class PlacementService:
    """Registry of sessions and sweeps behind the serve API."""

    def __init__(
        self, max_telemetry_samples: int = MAX_TELEMETRY_SAMPLES
    ):
        if max_telemetry_samples <= 0:
            raise ConfigError(
                "max_telemetry_samples must be positive, got "
                f"{max_telemetry_samples}"
            )
        self.max_telemetry_samples = max_telemetry_samples
        self._lock = threading.RLock()
        self._sessions: Dict[str, _Session] = {}
        self._sweeps: Dict[str, _Sweep] = {}
        self._session_ids = itertools.count()
        self._sweep_ids = itertools.count()

    # -- sessions ------------------------------------------------------------

    def create_session(self, req: CreateSessionRequest) -> SessionInfo:
        """Register a new session; returns its descriptor."""
        with self._lock:
            session_id = f"s{next(self._session_ids):04d}"
        # Build outside the registry lock: deadline computation and
        # curve construction take real time on a cold cache.
        session = _Session(session_id, req)
        with self._lock:
            self._sessions[session_id] = session
        obs.counter_inc("serve.sessions_created")
        return session.info()

    def _session(self, session_id: str) -> _Session:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise UnknownSession(
                    f"unknown session {session_id!r}",
                    session_id=session_id,
                ) from None

    def session_info(self, session_id: str) -> SessionInfo:
        """Descriptor of one live session."""
        return self._session(session_id).info()

    def list_sessions(self) -> List[SessionInfo]:
        """Descriptors of every live session, in id order."""
        with self._lock:
            sessions = [
                self._sessions[k] for k in sorted(self._sessions)
            ]
        return [s.info() for s in sessions]

    def delete_session(self, session_id: str) -> None:
        """Unregister a session (its runtime state is dropped)."""
        with self._lock:
            if session_id not in self._sessions:
                raise UnknownSession(
                    f"unknown session {session_id!r}",
                    session_id=session_id,
                )
            del self._sessions[session_id]
        obs.counter_inc("serve.sessions_deleted")

    def decide(
        self, session_id: str, telemetry: TelemetryRequest
    ) -> Decision:
        """One epoch of the online loop for one session."""
        if telemetry.sample_count > self.max_telemetry_samples:
            raise PayloadTooLarge(
                f"telemetry batch of {telemetry.sample_count} samples "
                f"exceeds the {self.max_telemetry_samples}-sample "
                "bound",
                size=telemetry.sample_count,
                limit=self.max_telemetry_samples,
            )
        decision = self._session(session_id).decide(telemetry)
        obs.counter_inc("serve.decisions")
        if decision.degraded:
            obs.counter_inc("serve.decisions_degraded")
        return decision

    # -- metrics -------------------------------------------------------------

    def metrics_snapshot(self) -> Dict:
        """The live ``repro.obs`` registry as a JSON-able dict."""
        return obs.metrics().snapshot()

    def metrics_text(self) -> str:
        """The live registry in the plain-text exposition format."""
        return obs.metrics().render_text()

    # -- sweeps --------------------------------------------------------------

    def start_sweep(self, req: SweepRequest) -> SweepStatus:
        """Kick off a background sweep; returns its initial status."""
        with self._lock:
            sweep_id = f"w{next(self._sweep_ids):04d}"
            sweep = _Sweep(sweep_id, req)
            self._sweeps[sweep_id] = sweep
        thread = threading.Thread(
            target=sweep.run, name=f"repro-sweep-{sweep_id}", daemon=True
        )
        sweep.thread = thread
        thread.start()
        obs.counter_inc("serve.sweeps_started")
        return sweep.status()

    def sweep_status(self, sweep_id: str) -> SweepStatus:
        """Status of one background sweep."""
        with self._lock:
            try:
                sweep = self._sweeps[sweep_id]
            except KeyError:
                raise UnknownSession(
                    f"unknown sweep {sweep_id!r}", session_id=sweep_id
                ) from None
        return sweep.status()

    def list_sweeps(self) -> List[SweepStatus]:
        """Status of every sweep, in id order."""
        with self._lock:
            sweeps = [self._sweeps[k] for k in sorted(self._sweeps)]
        return [s.status() for s in sweeps]

    def wait_sweeps(self, timeout: Optional[float] = None) -> None:
        """Join background sweep threads (tests and clean shutdown)."""
        with self._lock:
            threads = [
                s.thread for s in self._sweeps.values() if s.thread
            ]
        for thread in threads:
            thread.join(timeout)
