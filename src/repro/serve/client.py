"""The bundled sync client: the schema types over ``http.client``.

:class:`Client` speaks exactly the :mod:`repro.serve.schema` wire
format the daemon does — requests are built with ``to_json()``,
responses parsed with ``from_dict()``, so a schema change breaks both
sides at once instead of drifting. Non-2xx responses carry an
:class:`~repro.serve.schema.ErrorBody` naming a :mod:`repro.errors`
class; the client re-raises that same typed exception
(:class:`~repro.errors.UnknownSession` for a 404,
:class:`~repro.errors.PayloadTooLarge` for a 413, ...), so server-side
failures are caught with the identical vocabulary as in-process ones.

One persistent HTTP/1.1 connection per client, guarded by a lock and
re-established on transport errors; give each thread its own
``Client`` (the load generator does).
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any, Dict, List, Optional

from .. import errors as _errors
from ..errors import ReproError
from .http import DEFAULT_HOST, DEFAULT_PORT
from .schema import (
    CreateSessionRequest,
    Decision,
    ErrorBody,
    SessionInfo,
    SweepRequest,
    SweepStatus,
    TelemetryRequest,
)

__all__ = ["Client"]


def _exception_for(body: ErrorBody) -> ReproError:
    """Rebuild the typed exception an ``ErrorBody`` names."""
    cls = getattr(_errors, body.error, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    return cls(body.message)


class Client:
    """Synchronous client for one serve daemon."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(
        self, method: str, path: str, body: Optional[str] = None
    ) -> Any:
        headers = {"Content-Type": "application/json"}
        with self._lock:
            for attempt in (0, 1):
                conn = self._connection()
                try:
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                    break
                except (
                    http.client.HTTPException,
                    ConnectionError,
                    BrokenPipeError,
                ):
                    # Stale keep-alive connection: rebuild once.
                    self.close_connection()
                    if attempt:
                        raise
        content_type = response.headers.get("Content-Type", "")
        text = raw.decode("utf-8")
        if response.status >= 400:
            try:
                payload = json.loads(text)
            except ValueError:
                payload = {
                    "error": "ReproError",
                    "message": text or response.reason,
                    "status": response.status,
                }
            raise _exception_for(ErrorBody.from_dict(payload))
        if content_type.startswith("text/plain"):
            return text
        return json.loads(text) if text else None

    def close_connection(self) -> None:
        """Drop the persistent connection (re-opened on next call)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    # -- API -----------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def create_session(self, req: CreateSessionRequest) -> SessionInfo:
        """``POST /v1/sessions``."""
        data = self._request("POST", "/v1/sessions", req.to_json())
        return SessionInfo.from_dict(data)

    def sessions(self) -> List[SessionInfo]:
        """``GET /v1/sessions``."""
        data = self._request("GET", "/v1/sessions")
        return [SessionInfo.from_dict(d) for d in data]

    def session(self, session_id: str) -> SessionInfo:
        """``GET /v1/sessions/<id>``."""
        data = self._request("GET", f"/v1/sessions/{session_id}")
        return SessionInfo.from_dict(data)

    def delete_session(self, session_id: str) -> None:
        """``DELETE /v1/sessions/<id>``."""
        self._request("DELETE", f"/v1/sessions/{session_id}")

    def decide(
        self, session_id: str, telemetry: TelemetryRequest
    ) -> Decision:
        """``POST /v1/sessions/<id>/telemetry`` — one epoch."""
        data = self._request(
            "POST",
            f"/v1/sessions/{session_id}/telemetry",
            telemetry.to_json(),
        )
        return Decision.from_dict(data)

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics`` — the live registry snapshot."""
        return self._request("GET", "/v1/metrics")

    def metrics_text(self) -> str:
        """``GET /v1/metrics/text`` — plain-text exposition."""
        return self._request("GET", "/v1/metrics/text")

    def start_sweep(self, req: SweepRequest) -> SweepStatus:
        """``POST /v1/sweeps`` — start a background sweep."""
        data = self._request("POST", "/v1/sweeps", req.to_json())
        return SweepStatus.from_dict(data)

    def sweeps(self) -> List[SweepStatus]:
        """``GET /v1/sweeps``."""
        data = self._request("GET", "/v1/sweeps")
        return [SweepStatus.from_dict(d) for d in data]

    def sweep_status(self, sweep_id: str) -> SweepStatus:
        """``GET /v1/sweeps/<id>``."""
        data = self._request("GET", f"/v1/sweeps/{sweep_id}")
        return SweepStatus.from_dict(data)

    def close(self) -> None:
        """Close the underlying connection."""
        self.close_connection()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
