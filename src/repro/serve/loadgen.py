"""Synthetic tenant fleet driving a serve daemon (``repro serve
loadgen``).

Each tenant is a deterministic *telemetry script*: a seeded choice of
LC app, chip, and load, plus per-epoch latency factors expressed
relative to the app's deadline (fetched from the session descriptor,
so the script is hardware-independent). A pool of worker threads
replays the scripts through the bundled :class:`~repro.serve.client.
Client` — one session and one persistent connection per tenant —
recording client-observed decision latency, invariant violations, and
each decision's :meth:`~repro.serve.schema.Decision.fingerprint`.

Determinism is the point: the same ``(seed, tenants, requests)``
replayed against a fresh daemon must produce byte-identical
fingerprint sequences per tenant, whatever the thread interleaving —
sessions are isolated, so concurrency cannot leak into decisions. The
bench suite (``repro bench --suite serve``) runs the generator twice
and gates on exactly that.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.queueing import percentile
from ..workloads.tailbench import lc_profile_names
from .client import Client
from .schema import CreateSessionRequest, TelemetryRequest

__all__ = [
    "TenantScript",
    "LoadgenReport",
    "build_scripts",
    "run_loadgen",
]


@dataclass(frozen=True)
class TenantScript:
    """One tenant's deterministic session + telemetry plan.

    ``factors[e]`` holds the epoch's latency samples as multiples of
    the app deadline; the driver scales them by the real deadline the
    session descriptor reports.
    """

    tenant: int
    create: CreateSessionRequest
    factors: Tuple[Tuple[float, ...], ...]


@dataclass
class LoadgenReport:
    """What a loadgen run observed (the bench suite's raw material)."""

    tenants: int
    requests: int
    seed: int
    wall_seconds: float = 0.0
    decisions: int = 0
    errors: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    latencies_ms: List[float] = field(default_factory=list)
    #: tenant -> that tenant's decision fingerprints, in epoch order.
    fingerprints: Dict[int, List[str]] = field(default_factory=dict)

    @property
    def decisions_per_sec(self) -> float:
        """Aggregate decision throughput over the whole run."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.decisions / self.wall_seconds

    def latency_ms(self, pct: float) -> float:
        """Client-observed decision-latency percentile (ms)."""
        if not self.latencies_ms:
            return 0.0
        return percentile(self.latencies_ms, pct)

    @property
    def ok(self) -> bool:
        """No errors and no invariant violations."""
        return not self.errors and not self.violations

    def summary(self) -> Dict[str, object]:
        """JSON-able digest (full sample lists elided)."""
        return {
            "tenants": self.tenants,
            "requests_per_tenant": self.requests,
            "seed": self.seed,
            "total_requests": self.decisions,
            "wall_seconds": self.wall_seconds,
            "decisions_per_sec": self.decisions_per_sec,
            "p50_decision_ms": self.latency_ms(50.0),
            "p95_decision_ms": self.latency_ms(95.0),
            "errors": list(self.errors),
            "invariant_violations": list(self.violations),
            "ok": self.ok,
        }


def build_scripts(
    tenants: int,
    requests: int,
    seed: int = 0,
    chip: str = "small",
) -> List[TenantScript]:
    """Deterministic per-tenant scripts for a loadgen run.

    Load drifts over a ten-epoch sawtooth (so the controller genuinely
    grows and shrinks allocations) with per-sample jitter, all drawn
    from ``random.Random(seed * 1_000_003 + tenant)``.
    """
    names = lc_profile_names()
    scripts: List[TenantScript] = []
    for tenant in range(tenants):
        rng = random.Random(seed * 1_000_003 + tenant)
        create = CreateSessionRequest(
            lc_apps=(rng.choice(names),),
            mix_seed=rng.randrange(8),
            load="high" if rng.random() < 0.7 else "low",
            design="Jumanji",
            chip=chip,
            seed=tenant,
        )
        factors: List[Tuple[float, ...]] = []
        for epoch in range(requests):
            # Sawtooth pressure: quiet (0.6x deadline) to hot (1.3x).
            base = 0.6 + 0.7 * ((epoch % 10) / 9.0 if requests > 1 else 0.0)
            count = rng.randint(8, 24)
            factors.append(
                tuple(
                    base * rng.uniform(0.8, 1.2) for _ in range(count)
                )
            )
        scripts.append(
            TenantScript(
                tenant=tenant, create=create, factors=tuple(factors)
            )
        )
    return scripts


def _drive_tenant(
    host: str,
    port: int,
    script: TenantScript,
) -> Tuple[int, List[str], List[float], List[str], List[str]]:
    """Replay one tenant's script; returns its observations."""
    fingerprints: List[str] = []
    latencies: List[float] = []
    violations: List[str] = []
    errors: List[str] = []
    decisions = 0
    client = Client(host, port)
    try:
        info = client.create_session(script.create)
        lc_set = set(info.lc_instances)
        for epoch, factors in enumerate(script.factors):
            telemetry = TelemetryRequest(
                latencies={
                    app: tuple(
                        info.deadlines[app] * f for f in factors
                    )
                    for app in sorted(lc_set)
                }
            )
            start = time.perf_counter()
            decision = client.decide(info.session_id, telemetry)
            latencies.append(
                (time.perf_counter() - start) * 1e3
            )
            decisions += 1
            fingerprints.append(decision.fingerprint())
            tag = f"tenant {script.tenant} epoch {epoch}"
            if decision.epoch != epoch:
                violations.append(
                    f"{tag}: epoch {decision.epoch} != {epoch}"
                )
            bad_sizes = {
                a: s
                for a, s in decision.lat_sizes.items()
                if not s > 0.0
            }
            if bad_sizes:
                violations.append(
                    f"{tag}: non-positive LC sizes {bad_sizes}"
                )
            if not decision.degraded:
                missing = lc_set - set(decision.apps())
                if missing:
                    violations.append(
                        f"{tag}: LC apps absent from allocation: "
                        f"{sorted(missing)}"
                    )
        client.delete_session(info.session_id)
    except Exception as exc:  # collected, not raised: the report gates
        errors.append(
            f"tenant {script.tenant}: {type(exc).__name__}: {exc}"
        )
    finally:
        client.close()
    return decisions, fingerprints, latencies, violations, errors


def run_loadgen(
    host: str,
    port: int,
    tenants: int = 8,
    requests: int = 10,
    seed: int = 0,
    concurrency: int = 8,
    chip: str = "small",
    scripts: Optional[List[TenantScript]] = None,
) -> LoadgenReport:
    """Drive a daemon with ``tenants`` concurrent telemetry scripts."""
    if scripts is None:
        scripts = build_scripts(tenants, requests, seed=seed, chip=chip)
    report = LoadgenReport(
        tenants=tenants, requests=requests, seed=seed
    )
    start = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=max(1, concurrency)
    ) as pool:
        results = list(
            pool.map(
                lambda s: _drive_tenant(host, port, s),
                scripts,
            )
        )
    report.wall_seconds = time.perf_counter() - start
    for script, (decisions, fps, lats, violations, errors) in zip(
        scripts, results
    ):
        report.decisions += decisions
        report.fingerprints[script.tenant] = fps
        report.latencies_ms.extend(lats)
        report.violations.extend(violations)
        report.errors.extend(errors)
    return report
