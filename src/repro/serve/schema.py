"""Wire schemas of the serve API.

Every request and response body of :mod:`repro.serve` is one of the
frozen dataclasses below. They are the *single* source of truth for the
API surface: the HTTP daemon (:mod:`repro.serve.http`), the bundled
sync client (:class:`repro.serve.Client`), and the synthetic load
generator (:mod:`repro.serve.loadgen`) all construct and parse exactly
these types — there is no hand-rolled JSON anywhere in the serving
path.

Validation follows the package's spec conventions (see
:class:`repro.fleet.scenarios.Scenario`): parsing is strict — unknown
fields raise :class:`~repro.errors.ConfigError` naming the offending
key, and every field is type- and range-checked in ``__post_init__`` so
a bad payload fails at the edge with a message naming the field, not
three layers down with a bare traceback. Serialisation is canonical
JSON (sorted keys, minimal separators), which is what makes
:meth:`Decision.fingerprint` usable as a byte-identity determinism
gate.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "LOADS",
    "CHIPS",
    "CreateSessionRequest",
    "SessionInfo",
    "TelemetryRequest",
    "Decision",
    "SweepRequest",
    "SweepStatus",
    "ErrorBody",
]

#: Load levels a session can run at (mirrors ``WorkloadSpec.load``).
LOADS = ("high", "low")

#: Hardware a session can be created on: the paper's 20-core machine
#: (``default``) or the fleet's 2x2 socket (``small``).
CHIPS = ("default", "small")


def _canonical(value: Any) -> Any:
    """JSON-clean copy: tuples -> lists, mappings sorted by key."""
    if isinstance(value, Mapping):
        return {
            str(k): _canonical(value[k])
            for k in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _check_int(name: str, value: Any, minimum: Optional[int] = None) -> None:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer, got {value!r}",
    )
    if minimum is not None:
        _require(value >= minimum, f"{name} must be >= {minimum}, got {value}")


def _check_str_tuple(name: str, value: Any) -> None:
    _require(
        isinstance(value, tuple)
        and all(isinstance(v, str) and v for v in value),
        f"{name} must be a sequence of non-empty strings, got {value!r}",
    )


class _Message:
    """Shared (de)serialisation for every schema dataclass."""

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-clean plain-dict form (tuples become lists)."""
        return _canonical(dataclasses.asdict(self))

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, minimal separators."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: Any) -> "_Message":
        """Strict parse: unknown keys raise ``ConfigError`` naming them."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"{cls.__name__} payload must be a JSON object, got "
                f"{type(data).__name__}"
            )
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigError(
                f"unknown {cls.__name__} fields: {unknown}"
            )
        convert = getattr(cls, "_CONVERT", {})
        kwargs: Dict[str, Any] = {}
        for f in fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            conv = convert.get(f.name)
            if conv is not None and value is not None:
                try:
                    value = conv(value)
                except (TypeError, ValueError, AttributeError):
                    raise ConfigError(
                        f"bad {cls.__name__}.{f.name} value: "
                        f"{data[f.name]!r}"
                    ) from None
            kwargs[f.name] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            # A required field was missing (defaults cover the rest).
            raise ConfigError(
                f"bad {cls.__name__} payload: {exc}"
            ) from None

    @classmethod
    def from_json(cls, payload: str) -> "_Message":
        """Parse canonical (or any) JSON text, strictly."""
        try:
            data = json.loads(payload)
        except ValueError as exc:
            raise ConfigError(
                f"{cls.__name__} payload is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)


def _str_tuple(value: Any) -> Tuple[str, ...]:
    if isinstance(value, str):
        raise TypeError("expected a list, got a bare string")
    return tuple(value)


def _sample_map(value: Any) -> Dict[str, Tuple[float, ...]]:
    if not isinstance(value, Mapping):
        raise TypeError("expected an object")
    return {str(k): tuple(v) for k, v in value.items()}


def _float_map(value: Any) -> Dict[str, float]:
    if not isinstance(value, Mapping):
        raise TypeError("expected an object")
    return {str(k): float(v) for k, v in value.items()}


def _alloc_map(value: Any) -> Dict[str, Dict[str, float]]:
    if not isinstance(value, Mapping):
        raise TypeError("expected an object")
    return {str(k): _float_map(v) for k, v in value.items()}


@dataclass(frozen=True)
class CreateSessionRequest(_Message):
    """``POST /v1/sessions`` — create one placement session.

    A session owns a long-lived :class:`~repro.core.runtime.
    JumanjiRuntime` over the requested mix: ``lc_apps`` is one LC name
    (replicated to the paper's four VMs on the ``default`` chip; a
    single consolidated tenant on the ``small`` chip) or four names.
    The batch riders are drawn from ``mix_seed`` exactly like
    :func:`~repro.model.workload.make_default_workload`.
    """

    lc_apps: Tuple[str, ...]
    mix_seed: int = 0
    load: str = "high"
    design: str = "Jumanji"
    chip: str = "default"
    seed: int = 0

    _CONVERT = {"lc_apps": _str_tuple}

    def __post_init__(self) -> None:
        _check_str_tuple("lc_apps", self.lc_apps)
        _require(
            len(self.lc_apps) in (1, 4),
            f"lc_apps needs one or four names, got {len(self.lc_apps)}",
        )
        _check_int("mix_seed", self.mix_seed, minimum=0)
        _check_int("seed", self.seed, minimum=0)
        _require(
            self.load in LOADS,
            f"load must be one of {LOADS}, got {self.load!r}",
        )
        _require(
            self.chip in CHIPS,
            f"chip must be one of {CHIPS}, got {self.chip!r}",
        )
        _require(
            isinstance(self.design, str) and bool(self.design),
            f"design must be a non-empty string, got {self.design!r}",
        )
        _require(
            not (self.chip == "small" and len(self.lc_apps) != 1),
            "chip 'small' hosts exactly one LC app per session",
        )


@dataclass(frozen=True)
class SessionInfo(_Message):
    """Response describing one live session.

    ``lc_instances`` are the machine-unique instance ids (``app#N``)
    telemetry must be keyed by; ``deadlines`` maps each instance to its
    deadline in cycles (the controller's reference signal), so clients
    can express telemetry relative to the SLO without re-deriving it.
    """

    session_id: str
    design: str
    lc_apps: Tuple[str, ...]
    lc_instances: Tuple[str, ...]
    deadlines: Dict[str, float]
    load: str
    mix_seed: int
    chip: str
    seed: int
    epoch: int

    _CONVERT = {
        "lc_apps": _str_tuple,
        "lc_instances": _str_tuple,
        "deadlines": _float_map,
    }


@dataclass(frozen=True)
class TelemetryRequest(_Message):
    """``POST /v1/sessions/<id>/telemetry`` — one epoch of samples.

    ``latencies`` maps LC instance ids (``SessionInfo.lc_instances``)
    to request-latency samples in cycles. Sample *values* are
    sanitised downstream by the runtime's telemetry guards (NaN,
    negative, and infinite samples are dropped with a structured
    event); the schema only enforces shape. An empty map is a valid
    "no completions this epoch" report — the decision still advances.
    """

    latencies: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    _CONVERT = {"latencies": _sample_map}

    def __post_init__(self) -> None:
        _require(
            isinstance(self.latencies, dict),
            "latencies must be an object of app -> samples",
        )
        for app, samples in self.latencies.items():
            _require(
                isinstance(app, str) and bool(app),
                f"latencies keys must be app ids, got {app!r}",
            )
            _require(
                isinstance(samples, tuple)
                and all(
                    isinstance(v, (int, float))
                    and not isinstance(v, bool)
                    for v in samples
                ),
                f"latencies[{app!r}] must be a list of numbers",
            )

    @property
    def sample_count(self) -> int:
        """Total samples across apps (the 413 batch bound)."""
        return sum(len(v) for v in self.latencies.values())


@dataclass(frozen=True)
class Decision(_Message):
    """The placement decision closing one telemetry POST.

    Mirrors :class:`~repro.core.runtime.ReconfigRecord`: the epoch
    index, the controller's LC target sizes, the installed allocation
    (bank -> app -> MB; JSON object keys are strings, so banks are
    stringified bank ids), and the record's ``invalidated_lines`` /
    ``degraded`` / ``memo_hit`` flags.
    """

    session_id: str
    epoch: int
    lat_sizes: Dict[str, float]
    allocation: Dict[str, Dict[str, float]]
    shared_batch: Tuple[str, ...]
    invalidated_lines: int
    degraded: bool
    memo_hit: bool

    _CONVERT = {
        "lat_sizes": _float_map,
        "allocation": _alloc_map,
        "shared_batch": _str_tuple,
    }

    def apps(self) -> Tuple[str, ...]:
        """Every app granted space somewhere in the allocation."""
        seen = sorted(
            {a for per_bank in self.allocation.values() for a in per_bank}
        )
        return tuple(seen)

    def fingerprint(self) -> str:
        """Canonical JSON of the decision *content*.

        Excludes ``session_id`` (an accident of registry order under
        concurrency) so the same telemetry script replayed into a fresh
        session fingerprints byte-identically — the bench suite's
        determinism gate compares exactly these strings.
        """
        payload = self.to_dict()
        payload.pop("session_id")
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )


@dataclass(frozen=True)
class SweepRequest(_Message):
    """``POST /v1/sweeps`` — start a figure-style sweep in background.

    Runs :func:`repro.experiments.common.run_sweep` over the given
    designs/workloads/loads grid through a
    :class:`~repro.runner.SweepRunner`. ``checkpoint`` names a journal
    path on the daemon's filesystem: completed cells are journalled as
    they finish, and re-POSTing the same request with the same
    ``checkpoint`` resumes instead of recomputing.
    """

    designs: Tuple[str, ...] = ("Jumanji",)
    lc_workloads: Tuple[str, ...] = ("xapian",)
    loads: Tuple[str, ...] = ("high",)
    mixes: int = 1
    epochs: int = 2
    jobs: Optional[int] = None
    checkpoint: Optional[str] = None

    _CONVERT = {
        "designs": _str_tuple,
        "lc_workloads": _str_tuple,
        "loads": _str_tuple,
    }

    def __post_init__(self) -> None:
        _check_str_tuple("designs", self.designs)
        _check_str_tuple("lc_workloads", self.lc_workloads)
        _check_str_tuple("loads", self.loads)
        _require(bool(self.designs), "designs must not be empty")
        _require(
            bool(self.lc_workloads), "lc_workloads must not be empty"
        )
        for load in self.loads:
            _require(
                load in LOADS,
                f"loads entries must be one of {LOADS}, got {load!r}",
            )
        _check_int("mixes", self.mixes, minimum=1)
        _check_int("epochs", self.epochs, minimum=1)
        if self.jobs is not None:
            _check_int("jobs", self.jobs, minimum=1)

    @property
    def total_cells(self) -> int:
        """Design cells the sweep will produce (excluding baselines)."""
        return (
            len(self.designs)
            * len(self.lc_workloads)
            * len(self.loads)
            * self.mixes
        )


@dataclass(frozen=True)
class SweepStatus(_Message):
    """State of one background sweep (``GET /v1/sweeps/<id>``)."""

    sweep_id: str
    state: str  # "running" | "done" | "failed"
    completed: int
    total: int
    error: Optional[str] = None
    #: design -> gmean weighted speedup, filled once ``state == "done"``.
    gmean_speedups: Dict[str, float] = field(default_factory=dict)

    _CONVERT = {"gmean_speedups": _float_map}


@dataclass(frozen=True)
class ErrorBody(_Message):
    """Every non-2xx response body: the taxonomy class, named.

    ``error`` is the :mod:`repro.errors` class name (or the raw
    exception class for unexpected failures), so clients can re-raise
    the same typed exception the service hit.
    """

    error: str
    message: str
    status: int
