"""repro.serve: placement-as-a-service for the Jumanji loop.

ROADMAP item 2 made concrete: the paper's 100 ms controller loop as a
long-lived daemon instead of a batch run. A stdlib
``ThreadingHTTPServer`` owns a registry of
:class:`~repro.core.runtime.JumanjiRuntime` sessions; tenants POST
epoch telemetry and receive the placement decision (allocation plus
the :class:`~repro.core.runtime.ReconfigRecord` fields), query live
:mod:`repro.obs` metrics, and start/checkpoint/resume figure sweeps.

The API surface is schema-driven: the frozen JSON-canonical
dataclasses in :mod:`repro.serve.schema` are shared verbatim by the
daemon (:class:`ServeDaemon`), the bundled sync client
(:class:`Client`), and the synthetic load generator
(:mod:`repro.serve.loadgen`). Errors map onto the
:mod:`repro.errors` taxonomy -> HTTP status codes with the class named
in the body.

Quick start::

    from repro.serve import Client, ServeDaemon
    from repro.serve.schema import CreateSessionRequest, TelemetryRequest

    with ServeDaemon(port=0) as daemon:
        client = Client(daemon.host, daemon.port)
        info = client.create_session(
            CreateSessionRequest(lc_apps=("xapian",), chip="small")
        )
        decision = client.decide(info.session_id, TelemetryRequest())
        print(decision.lat_sizes)

CLI: ``repro serve run`` (foreground daemon) and ``repro serve loadgen
--tenants N`` (synthetic fleet); benched and gated by ``repro bench
--suite serve``.
"""

from .client import Client
from .http import (
    DEFAULT_HOST,
    DEFAULT_MAX_BODY,
    DEFAULT_PORT,
    ServeDaemon,
    status_for,
)
from .schema import (
    CreateSessionRequest,
    Decision,
    ErrorBody,
    SessionInfo,
    SweepRequest,
    SweepStatus,
    TelemetryRequest,
)
from .service import MAX_TELEMETRY_SAMPLES, PlacementService

__all__ = [
    "Client",
    "CreateSessionRequest",
    "Decision",
    "DEFAULT_HOST",
    "DEFAULT_MAX_BODY",
    "DEFAULT_PORT",
    "ErrorBody",
    "MAX_TELEMETRY_SAMPLES",
    "PlacementService",
    "ServeDaemon",
    "SessionInfo",
    "SweepRequest",
    "SweepStatus",
    "TelemetryRequest",
    "status_for",
]
