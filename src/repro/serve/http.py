"""The HTTP transport: stdlib ``ThreadingHTTPServer`` over the service.

One deliberately small layer: decode the request path and JSON body
into :mod:`repro.serve.schema` types, call the matching
:class:`~repro.serve.service.PlacementService` method, encode the
result. Errors never escape as tracebacks — every exception maps
through :func:`status_for` onto the :mod:`repro.errors` taxonomy
(:class:`~repro.errors.ConfigError`/:class:`~repro.errors.
TelemetryInvalid` -> 400, :class:`~repro.errors.UnknownSession` -> 404,
:class:`~repro.errors.PayloadTooLarge` -> 413, anything else -> 500)
and is returned as an :class:`~repro.serve.schema.ErrorBody` naming
the class, so clients re-raise the same typed exception.

Endpoints (all JSON unless noted):

====== ================================ ================================
Method Path                             Body -> Response
====== ================================ ================================
GET    /v1/health                       -- -> {"ok", "version"}
POST   /v1/sessions                     CreateSessionRequest -> SessionInfo
GET    /v1/sessions                     -- -> [SessionInfo, ...]
GET    /v1/sessions/<id>                -- -> SessionInfo
DELETE /v1/sessions/<id>                -- -> {"ok"}
POST   /v1/sessions/<id>/telemetry      TelemetryRequest -> Decision
GET    /v1/metrics                      -- -> MetricsRegistry snapshot
GET    /v1/metrics/text                 -- -> text/plain exposition
POST   /v1/sweeps                       SweepRequest -> SweepStatus
GET    /v1/sweeps                       -- -> [SweepStatus, ...]
GET    /v1/sweeps/<id>                  -- -> SweepStatus
====== ================================ ================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import urlsplit

from .. import __version__, obs
from ..config import Settings
from ..errors import (
    ConfigError,
    PayloadTooLarge,
    ReproError,
    TelemetryInvalid,
    UnknownSession,
)
from .schema import (
    CreateSessionRequest,
    ErrorBody,
    SweepRequest,
    TelemetryRequest,
)
from .service import PlacementService

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_MAX_BODY",
    "ServeDaemon",
    "status_for",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8123
#: Request-body byte bound (``REPRO_SERVE_MAX_BODY`` overrides).
DEFAULT_MAX_BODY = 1 << 20


def status_for(exc: BaseException) -> int:
    """HTTP status for a service exception (the taxonomy mapping)."""
    if isinstance(exc, PayloadTooLarge):
        return 413
    if isinstance(exc, UnknownSession):
        return 404
    if isinstance(exc, (ConfigError, TelemetryInvalid)):
        return 400
    return 500


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on the server/service."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # The default handler prints an access line per request to stderr;
    # the daemon observes through obs spans/counters instead.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    @property
    def service(self) -> PlacementService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        with obs.span("serve.request", method=method, path=path):
            try:
                status, payload, content_type = self._route(method, path)
            except Exception as exc:
                status = status_for(exc)
                payload = ErrorBody(
                    error=type(exc).__name__,
                    message=str(exc),
                    status=status,
                ).to_dict()
                content_type = "application/json"
                obs.counter_inc(f"serve.errors.{type(exc).__name__}")
        obs.counter_inc("serve.requests")
        self._reply(status, payload, content_type)

    def _reply(
        self, status: int, payload: Any, content_type: str
    ) -> None:
        if content_type == "text/plain":
            body = payload.encode("utf-8")
        else:
            body = json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Any:
        """The request body as parsed JSON (413 on oversize, 400 on
        malformed)."""
        length = int(self.headers.get("Content-Length") or 0)
        max_body = self.server.max_body  # type: ignore[attr-defined]
        if length > max_body:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{max_body}-byte bound",
                size=length,
                limit=max_body,
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise ConfigError(
                f"request body is not valid JSON: {exc}"
            ) from None

    def _route(
        self, method: str, path: str
    ) -> Tuple[int, Any, str]:
        parts = [p for p in path.split("/") if p]
        service = self.service
        if parts[:1] != ["v1"]:
            return self._not_found(path)
        rest = parts[1:]
        json_type = "application/json"
        if rest == ["health"] and method == "GET":
            return 200, {"ok": True, "version": __version__}, json_type
        if rest == ["sessions"]:
            if method == "POST":
                req = CreateSessionRequest.from_dict(self._body())
                info = service.create_session(req)
                return 200, info.to_dict(), json_type
            if method == "GET":
                infos = [s.to_dict() for s in service.list_sessions()]
                return 200, infos, "application/json"
        if len(rest) == 2 and rest[0] == "sessions":
            if method == "GET":
                info = service.session_info(rest[1])
                return 200, info.to_dict(), json_type
            if method == "DELETE":
                service.delete_session(rest[1])
                return 200, {"ok": True}, "application/json"
        if (
            len(rest) == 3
            and rest[0] == "sessions"
            and rest[2] == "telemetry"
            and method == "POST"
        ):
            telemetry = TelemetryRequest.from_dict(self._body())
            decision = service.decide(rest[1], telemetry)
            return 200, decision.to_dict(), "application/json"
        if rest == ["metrics"] and method == "GET":
            return 200, service.metrics_snapshot(), "application/json"
        if rest == ["metrics", "text"] and method == "GET":
            return 200, service.metrics_text(), "text/plain"
        if rest == ["sweeps"]:
            if method == "POST":
                req = SweepRequest.from_dict(self._body())
                status = service.start_sweep(req)
                return 200, status.to_dict(), json_type
            if method == "GET":
                sweeps = [s.to_dict() for s in service.list_sweeps()]
                return 200, sweeps, "application/json"
        if len(rest) == 2 and rest[0] == "sweeps" and method == "GET":
            status = service.sweep_status(rest[1])
            return 200, status.to_dict(), json_type
        return self._not_found(path)

    def _not_found(self, path: str) -> Tuple[int, Any, str]:
        body = ErrorBody(
            error="NotFound",
            message=f"no route for {path!r}",
            status=404,
        )
        return 404, body.to_dict(), "application/json"


class ServeDaemon:
    """A running serve endpoint: server + service + worker thread.

    Binds on construction (``port=0`` asks the OS for an ephemeral
    port — the resolved one is on :attr:`port`), serves on
    :meth:`start` (background thread) or :meth:`serve_forever`
    (foreground, for ``repro serve run``). Usable as a context
    manager; :meth:`close` stops the listener and drops the service.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        max_body: Optional[int] = None,
        service: Optional[PlacementService] = None,
    ):
        settings = Settings.from_env()
        if host is None:
            host = settings.serve_host or DEFAULT_HOST
        if port is None:
            port = (
                settings.serve_port
                if settings.serve_port is not None
                else DEFAULT_PORT
            )
        if max_body is None:
            max_body = settings.serve_max_body or DEFAULT_MAX_BODY
        if max_body <= 0:
            raise ConfigError(
                f"max_body must be positive, got {max_body}"
            )
        self.service = (
            service if service is not None else PlacementService()
        )
        self.server = ThreadingHTTPServer((host, port), _Handler)
        self.server.service = self.service  # type: ignore[attr-defined]
        self.server.max_body = max_body  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """The bound address."""
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with ``port=0``)."""
        return self.server.server_address[1]

    def start(self) -> "ServeDaemon":
        """Serve on a background thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.server.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (until interrupted)."""
        self.server.serve_forever()

    def close(self) -> None:
        """Stop serving and release the listening socket."""
        # shutdown() handshakes with a *running* serve loop; calling it
        # when serve_forever never started would block forever.
        if self._thread is not None:
            self.server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server.server_close()

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
