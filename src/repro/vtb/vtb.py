"""Virtual caches, placement descriptors, and the VTB (paper Sec. IV-A).

Jumanji borrows Jigsaw's single-lookup D-NUCA hardware:

* every page maps to a *virtual cache* (VC), recorded in the page table
  and cached in the TLB;
* each core's *virtual-cache translation buffer* (VTB) maps a VC id to a
  *placement descriptor* — a 128-entry array of bank ids;
* an address is hashed to index the descriptor, yielding the unique LLC
  bank that may hold it (single-lookup: no directories, no multi-bank
  search).

Software controls placement by rewriting descriptor entries. Setting the
entries proportionally to a bank-allocation vector makes the fraction of
the VC's lines living in bank ``b`` equal ``alloc[b] / sum(alloc)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PlacementDescriptor",
    "VirtualCache",
    "Vtb",
    "PageTable",
    "descriptor_from_allocation",
    "hash_lines",
]

#: Number of entries in a placement descriptor (paper: 128).
DESCRIPTOR_ENTRIES = 128


def _hash_address(line_addr: int) -> int:
    """Deterministic address hash used to index placement descriptors."""
    x = line_addr & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
    x &= 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB
    x &= 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def hash_lines(lines: Sequence[int]) -> np.ndarray:
    """Vectorized :func:`_hash_address` over a batch of line addresses.

    Returns a ``uint64`` array; identical to the scalar hash for every
    address below 2**64 (uint64 arithmetic wraps exactly like the masked
    Python version). Raises ``OverflowError`` for wider addresses —
    callers fall back to the scalar hash in that case.
    """
    x = np.asarray(lines, dtype=np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class PlacementDescriptor:
    """A 128-entry array of bank ids; the hardware's placement table."""

    __slots__ = ("_entries", "_entries_np")

    def __init__(self, entries: Sequence[int]):
        if len(entries) != DESCRIPTOR_ENTRIES:
            raise ValueError(
                f"descriptor needs exactly {DESCRIPTOR_ENTRIES} entries"
            )
        if any(e < 0 for e in entries):
            raise ValueError("bank ids must be non-negative")
        self._entries: Tuple[int, ...] = tuple(int(e) for e in entries)
        self._entries_np: Optional[np.ndarray] = None

    @property
    def entries(self) -> Tuple[int, ...]:
        """The descriptor's 128 bank ids."""
        return self._entries

    @property
    def entries_array(self) -> np.ndarray:
        """The 128 bank ids as an int64 array (built lazily, cached)."""
        if self._entries_np is None:
            self._entries_np = np.asarray(self._entries, dtype=np.int64)
        return self._entries_np

    def bank_for(self, line_addr: int) -> int:
        """LLC bank holding ``line_addr`` under this placement."""
        return self._entries[_hash_address(line_addr) % DESCRIPTOR_ENTRIES]

    def bank_for_lines(self, lines: Sequence[int]) -> List[int]:
        """Vectorized :meth:`bank_for` over a batch of line addresses."""
        try:
            idx = hash_lines(lines) % np.uint64(DESCRIPTOR_ENTRIES)
        except OverflowError:
            return [self.bank_for(line) for line in lines]
        return self.entries_array[idx.astype(np.intp)].tolist()

    def banks(self) -> Tuple[int, ...]:
        """Distinct banks this descriptor spreads data across."""
        return tuple(sorted(set(self._entries)))

    def fraction_in(self, bank: int) -> float:
        """Fraction of descriptor entries pointing at ``bank``."""
        return self._entries.count(bank) / DESCRIPTOR_ENTRIES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementDescriptor):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"PlacementDescriptor(banks={self.banks()})"


def descriptor_from_allocation(
    alloc: Mapping[int, float]
) -> PlacementDescriptor:
    """Build a descriptor proportional to a bank-allocation vector.

    ``alloc[bank]`` is the capacity (any unit) the VC owns in that bank.
    Entries are apportioned with largest-remainder rounding so every bank
    with non-zero allocation receives at least one entry when possible,
    and the entry counts sum exactly to 128. Entries are interleaved
    round-robin across banks so consecutive hash values spread load.
    """
    positive = {b: a for b, a in alloc.items() if a > 0}
    if not positive:
        raise ValueError("allocation must contain a positive entry")
    total = sum(positive.values())
    quotas = {
        b: a / total * DESCRIPTOR_ENTRIES for b, a in positive.items()
    }
    counts = {b: int(q) for b, q in quotas.items()}
    assigned = sum(counts.values())
    remainders = sorted(
        positive, key=lambda b: (quotas[b] - counts[b], -b), reverse=True
    )
    for b in remainders:
        if assigned >= DESCRIPTOR_ENTRIES:
            break
        counts[b] += 1
        assigned += 1
    # Drop zero-count banks (allocation too small for one entry).
    counts = {b: c for b, c in counts.items() if c > 0}
    # Round-robin interleave.
    entries: List[int] = []
    remaining = dict(counts)
    order = sorted(remaining)
    while len(entries) < DESCRIPTOR_ENTRIES:
        progressed = False
        for b in order:
            if remaining[b] > 0:
                entries.append(b)
                remaining[b] -= 1
                progressed = True
        if not progressed:
            raise AssertionError("rounding failed to fill descriptor")
    return PlacementDescriptor(entries[:DESCRIPTOR_ENTRIES])


class VirtualCache:
    """A virtual cache: the OS abstraction for one app's (or type's) data."""

    def __init__(self, vc_id: int, descriptor: PlacementDescriptor):
        self.vc_id = vc_id
        self.descriptor = descriptor

    def bank_for(self, line_addr: int) -> int:
        """LLC bank holding ``line_addr`` under this placement."""
        return self.descriptor.bank_for(line_addr)

    def __repr__(self) -> str:
        return f"VirtualCache(id={self.vc_id}, banks={self.descriptor.banks()})"


class Vtb:
    """Per-core VC-id -> descriptor table, plus the update protocol.

    :meth:`update` returns the set of banks that lost descriptor entries,
    i.e. the banks whose copies of this VC's lines must be invalidated by
    the background coherence walk (paper Sec. IV-A "Coherence").
    """

    def __init__(self) -> None:
        self._table: Dict[int, PlacementDescriptor] = {}

    def install(self, vc_id: int, descriptor: PlacementDescriptor) -> None:
        """Install a descriptor without coherence tracking (cold start)."""
        self._table[vc_id] = descriptor

    def lookup(self, vc_id: int) -> PlacementDescriptor:
        """The descriptor installed for a VC id."""
        try:
            return self._table[vc_id]
        except KeyError:
            raise KeyError(f"VC {vc_id} has no descriptor installed") from None

    def bank_for(self, vc_id: int, line_addr: int) -> int:
        """The single LLC bank holding ``line_addr`` for ``vc_id``."""
        return self.lookup(vc_id).bank_for(line_addr)

    def update(
        self, vc_id: int, descriptor: PlacementDescriptor
    ) -> Tuple[int, ...]:
        """Replace a VC's descriptor; returns banks needing invalidation.

        A bank needs invalidation when any descriptor entry moved away
        from it — lines hashed to that entry may now live elsewhere, so
        stale copies must be purged to preserve the single-lookup
        invariant.
        """
        old = self._table.get(vc_id)
        self._table[vc_id] = descriptor
        if old is None:
            return ()
        dirty = {
            old_bank
            for old_bank, new_bank in zip(old.entries, descriptor.entries)
            if old_bank != new_bank
        }
        return tuple(sorted(dirty))

    def vc_ids(self) -> Tuple[int, ...]:
        """Installed VC ids, sorted."""
        return tuple(sorted(self._table))


class PageTable:
    """Page -> VC mapping (the OS-owned half of placement control)."""

    def __init__(self, page_bits: int = 12):
        if page_bits < 6:
            raise ValueError("pages must be at least one cache line")
        self.page_bits = page_bits
        self._mapping: Dict[int, int] = {}

    def page_of(self, byte_addr: int) -> int:
        """Page number of a byte address."""
        return byte_addr >> self.page_bits

    def map_page(self, page: int, vc_id: int) -> Optional[int]:
        """Map a page to a VC; returns the previous VC id if remapped."""
        old = self._mapping.get(page)
        self._mapping[page] = vc_id
        return old

    def vc_of_page(self, page: int) -> int:
        """VC id a page maps to."""
        try:
            return self._mapping[page]
        except KeyError:
            raise KeyError(f"page {page:#x} is unmapped") from None

    def vc_of_address(self, byte_addr: int) -> int:
        """VC id of the page containing a byte address."""
        return self.vc_of_page(self.page_of(byte_addr))

    def pages_of_vc(self, vc_id: int) -> Tuple[int, ...]:
        """All pages mapped to a VC, sorted."""
        return tuple(
            sorted(p for p, v in self._mapping.items() if v == vc_id)
        )
