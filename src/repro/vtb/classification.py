"""Whirlpool-style data classification onto virtual caches.

The paper treats one VC per application ("it suffices to think of there
being one VC per application [61, 80]"), but the VC abstraction is
finer: Whirlpool [61] classifies an application's *data* into pools
with different reuse and places each pool separately. This module
implements that extension:

* :func:`profile_page_accesses` — count accesses per page in a trace
  prefix (what an OS would sample from access bits);
* :func:`classify_pages` — split pages into ``num_classes`` pools by
  access frequency (hot pages first);
* :func:`build_classified_page_table` — produce the
  :class:`~repro.vtb.vtb.PageTable` mapping each pool to its own VC, so
  the hot pool can be pinned to the local bank while cold data spills
  to remoter banks.

The classification tests show the payoff: for a skewed (Zipf) app, a
hot-local/cold-remote split lowers average access latency versus
spreading the whole footprint proportionally.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Sequence, Tuple

from ..workloads.traces import AddressTrace
from .vtb import PageTable

__all__ = [
    "profile_page_accesses",
    "profile_llc_page_accesses",
    "classify_pages",
    "build_classified_page_table",
]

#: Cache lines per 4 KB page (64 B lines).
LINES_PER_PAGE = 64


def profile_page_accesses(
    trace: AddressTrace, accesses: int, page_bits: int = 12
) -> Dict[int, int]:
    """Access counts per page over a trace prefix.

    Line addresses are converted to byte addresses (x64) before the
    page shift, matching the page table's address convention.
    """
    if accesses < 1:
        raise ValueError("need at least one access")
    counts: Counter = Counter()
    shift = page_bits - 6  # line address -> page
    for _ in range(accesses):
        counts[trace.next_line() >> shift] += 1
    return dict(counts)


def profile_llc_page_accesses(
    trace: AddressTrace, accesses: int, page_bits: int = 12
) -> Dict[int, int]:
    """Access counts per page *as seen by the LLC*.

    Whirlpool classifies data by its cache-level behaviour: the raw
    stream's hottest pages are absorbed by the private caches and never
    reach the LLC, so LLC placement must be steered by the L2-miss
    stream. This profiler drives the trace through real L1/L2 models
    and counts only the accesses that reach the LLC.
    """
    if accesses < 1:
        raise ValueError("need at least one access")
    # Local import: vtb is a lower layer than sim; only this profiling
    # convenience reaches upward.
    from ..sim.tracesim import TraceSimulator
    from .vtb import PlacementDescriptor

    sim = TraceSimulator(bank_sets=64)
    sim.add_core(
        0, trace, 0, PlacementDescriptor([0] * 128)
    )
    counts: Counter = Counter()
    shift = page_bits - 6

    def hook(_core: int, line: int) -> None:
        counts[line >> shift] += 1

    sim.llc_access_hook = hook
    sim.run(accesses)
    if not counts:
        raise ValueError(
            "trace never reached the LLC (working set fits in L2)"
        )
    return dict(counts)


def classify_pages(
    page_counts: Mapping[int, int], num_classes: int = 2
) -> List[List[int]]:
    """Partition pages into classes by access frequency.

    Classes are balanced by *access volume*, not page count: class 0
    (hottest) holds the most-accessed pages covering roughly
    ``1/num_classes`` of all accesses, and so on — so the hot class is
    small and extremely reusable, the cold class large and streaming-
    like. Returns a list of page lists, hottest class first.
    """
    if num_classes < 1:
        raise ValueError("need at least one class")
    if not page_counts:
        raise ValueError("no pages profiled")
    pages = sorted(
        page_counts, key=lambda p: (-page_counts[p], p)
    )
    total = sum(page_counts.values())
    target = total / num_classes
    classes: List[List[int]] = [[] for _ in range(num_classes)]
    current = 0
    acc = 0
    for page in pages:
        if (
            acc >= target * (current + 1)
            and current < num_classes - 1
        ):
            current += 1
        classes[current].append(page)
        acc += page_counts[page]
    return classes


def build_classified_page_table(
    classes: Sequence[Sequence[int]],
    vc_ids: Sequence[int],
    page_bits: int = 12,
) -> PageTable:
    """A page table mapping each class's pages to its VC."""
    if len(classes) != len(vc_ids):
        raise ValueError("one VC id per class required")
    table = PageTable(page_bits=page_bits)
    for pages, vc_id in zip(classes, vc_ids):
        for page in pages:
            table.map_page(page, vc_id)
    return table
