"""Single-lookup D-NUCA placement hardware: VCs, descriptors, VTB."""

from .classification import (
    build_classified_page_table,
    classify_pages,
    profile_llc_page_accesses,
    profile_page_accesses,
)
from .vtb import (
    DESCRIPTOR_ENTRIES,
    PageTable,
    PlacementDescriptor,
    VirtualCache,
    Vtb,
    descriptor_from_allocation,
)

__all__ = [
    "DESCRIPTOR_ENTRIES",
    "PageTable",
    "PlacementDescriptor",
    "VirtualCache",
    "Vtb",
    "descriptor_from_allocation",
    "profile_page_accesses",
    "profile_llc_page_accesses",
    "classify_pages",
    "build_classified_page_table",
]
