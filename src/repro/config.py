"""System and workload configuration for the Jumanji reproduction.

The values in :class:`SystemConfig` mirror Table II of the paper, and the
latency-critical workload parameters in :data:`QPS_TABLE` mirror Table III.
All latencies are expressed in core cycles at 2.66 GHz unless stated
otherwise.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .errors import ConfigError

#: Core clock frequency in Hz (2.66 GHz Nehalem-class cores).
CORE_FREQ_HZ = 2.66e9

#: Cache line size in bytes.
LINE_BYTES = 64

#: Reconfiguration interval of the Jumanji runtime, in seconds (100 ms).
RECONFIG_INTERVAL_S = 0.1

#: Reconfiguration interval in core cycles.
RECONFIG_INTERVAL_CYCLES = int(RECONFIG_INTERVAL_S * CORE_FREQ_HZ)


@dataclass(frozen=True)
class SystemConfig:
    """Hardware parameters of the simulated multicore (paper Table II).

    The default instance models the 20-core, 20 MB LLC system used in the
    paper's evaluation: a 5x4 mesh of tiles, each with one core and one
    1 MB 32-way LLC bank, four memory controllers at the chip corners.
    """

    num_cores: int = 20
    mesh_cols: int = 5
    mesh_rows: int = 4

    # L1 (split I/D) and L2 private caches.
    l1_size_kb: int = 32
    l1_ways: int = 8
    l1_latency: int = 3
    l2_size_kb: int = 128
    l2_ways: int = 8
    l2_latency: int = 6

    # Shared LLC: one bank per tile.
    llc_bank_mb: float = 1.0
    llc_bank_ways: int = 32
    llc_bank_latency: int = 13
    llc_bank_ports: int = 1

    # Mesh NoC: X-Y routing, 2-cycle pipelined routers, 1-cycle links,
    # 128-bit flits.
    router_delay: int = 2
    link_delay: int = 1
    flit_bits: int = 128

    # Main memory: 4 controllers at the chip corners, fixed latency.
    num_mem_ctrls: int = 4
    mem_latency: int = 120

    def __post_init__(self) -> None:
        if self.mesh_cols * self.mesh_rows != self.num_cores:
            raise ValueError(
                f"mesh {self.mesh_cols}x{self.mesh_rows} does not match "
                f"{self.num_cores} cores"
            )

    @property
    def num_banks(self) -> int:
        """Number of LLC banks (one per tile)."""
        return self.num_cores

    @property
    def llc_size_mb(self) -> float:
        """Total LLC capacity in MB."""
        return self.num_banks * self.llc_bank_mb

    @property
    def bank_sets(self) -> int:
        """Number of sets in one LLC bank."""
        bank_bytes = int(self.llc_bank_mb * 1024 * 1024)
        return bank_bytes // (self.llc_bank_ways * LINE_BYTES)

    @property
    def total_ways(self) -> int:
        """Total partitionable ways across all banks (20 x 32 = 640)."""
        return self.num_banks * self.llc_bank_ways

    def with_router_delay(self, delay: int) -> "SystemConfig":
        """Return a copy with a different NoC router delay (Fig. 18)."""
        return dataclasses.replace(self, router_delay=delay)

    def tile_coords(self, tile: int) -> Tuple[int, int]:
        """(col, row) coordinates of a tile in the mesh."""
        if not 0 <= tile < self.num_cores:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.mesh_cols, tile // self.mesh_cols


@dataclass(frozen=True)
class QpsConfig:
    """Workload configuration for one latency-critical app (Table III)."""

    low_qps: float
    high_qps: float
    num_queries: int


#: Table III of the paper: queries/sec at low (10%) and high (50%) load.
QPS_TABLE: Dict[str, QpsConfig] = {
    "masstree": QpsConfig(300, 1475, 3000),
    "xapian": QpsConfig(130, 570, 1500),
    "img-dnn": QpsConfig(28, 135, 350),
    "silo": QpsConfig(375, 1750, 3500),
    "moses": QpsConfig(34, 155, 300),
}

#: Names of the latency-critical applications evaluated in the paper.
LC_APP_NAMES = tuple(QPS_TABLE)


@dataclass(frozen=True)
class ControllerConfig:
    """Feedback-controller parameters (Sec. V-C, bold values of Fig. 9).

    The controller raises an LC app's allocation by ``step`` when measured
    tail latency exceeds ``target_hi`` x deadline, lowers it when below
    ``target_lo`` x deadline, and "panics" to ``panic_fraction`` of the LLC
    when the tail exceeds ``panic_threshold`` x deadline.
    """

    target_lo: float = 0.85
    target_hi: float = 0.95
    panic_threshold: float = 1.10
    step: float = 0.10
    panic_fraction: float = 1.0 / 8.0
    configuration_interval: int = 20
    percentile: float = 95.0
    #: Max :class:`~repro.core.runtime.ReconfigRecord` entries the
    #: runtime keeps (ring buffer). ``None`` keeps the full history;
    #: million-epoch runs should cap this to bound memory.
    history_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target_lo < self.target_hi:
            raise ValueError("need 0 < target_lo < target_hi")
        if self.panic_threshold < self.target_hi:
            raise ValueError("panic_threshold must be >= target_hi")
        if not 0.0 < self.step < 1.0:
            raise ValueError("step must be in (0, 1)")
        if self.history_limit is not None and self.history_limit < 1:
            raise ValueError("history_limit must be >= 1 (or None)")


@dataclass(frozen=True)
class VmSpec:
    """One VM: which cores it owns and which apps run on them.

    ``lc_apps`` and ``batch_apps`` are app identifiers; core assignment is
    positional (LC apps first, then batch apps, one per core).
    """

    vm_id: int
    cores: Tuple[int, ...]
    lc_apps: Tuple[str, ...]
    batch_apps: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.lc_apps) + len(self.batch_apps) > len(self.cores):
            raise ValueError(
                f"VM {self.vm_id}: {len(self.lc_apps)} LC + "
                f"{len(self.batch_apps)} batch apps exceed "
                f"{len(self.cores)} cores"
            )

    @property
    def apps(self) -> Tuple[str, ...]:
        """All of the VM's app ids, LC apps first."""
        return self.lc_apps + self.batch_apps


DEFAULT_SYSTEM = SystemConfig()
DEFAULT_CONTROLLER = ControllerConfig()


# --------------------------------------------------------------------------
# Engine selection (the one place the fast/reference literal is checked)
# --------------------------------------------------------------------------


class Engine:
    """The implementations every dual-engine entry point accepts.

    ``"fast"`` selects the vectorised kernels (numpy placers, batched
    queueing RNG, memoisation); ``"reference"`` selects the frozen
    scalar copies in :mod:`repro.model.reference` and
    :mod:`repro.sim.reference`; ``"batch"`` is the fast engine plus the
    multi-mix batch axis (one Lindley scan advances every mix's queue,
    sub-epoch value-keyed memoisation — see :mod:`repro.model.batch`).
    All are differentially tested to be bit-identical.
    ``PlacementContext.engine``, ``SystemModel(engine=...)``, and the
    trace-sim cells all validate through :meth:`validate`, so an
    unknown literal fails the same way everywhere.
    """

    FAST = "fast"
    REFERENCE = "reference"
    BATCH = "batch"
    CHOICES = (FAST, REFERENCE, BATCH)

    @classmethod
    def accelerated(cls, value: str) -> bool:
        """True for engines that may use caches/vectorised fast paths
        (everything except the frozen scalar reference)."""
        return value != cls.REFERENCE

    @classmethod
    def validate(cls, value: str, source: str = "engine") -> str:
        """Return ``value`` if it names an engine; ConfigError otherwise."""
        if value not in cls.CHOICES:
            raise ConfigError(
                f"unknown engine {value!r} for {source}: expected one "
                f"of {cls.CHOICES!r}"
            )
        return value


# --------------------------------------------------------------------------
# Environment settings (the one place REPRO_* variables are read)
# --------------------------------------------------------------------------


def _clean(env: Mapping[str, str], name: str) -> Optional[str]:
    """The variable's value, with unset and blank both meaning absent."""
    value = env.get(name)
    if value is None or not value.strip():
        return None
    return value


def _positive_int(env: Mapping[str, str], name: str) -> Optional[int]:
    raw = _clean(env, name)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {raw!r}")
    return value


def _nonneg_int(env: Mapping[str, str], name: str) -> Optional[int]:
    raw = _clean(env, name)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be a non-negative integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {raw!r}")
    return value


@dataclass(frozen=True)
class Settings:
    """Every ``REPRO_*`` environment knob, parsed and validated once.

    :meth:`from_env` is the package's single reader of the environment;
    call sites take the typed field instead of re-parsing
    ``os.environ`` (keeping the "garbage raises
    :class:`~repro.errors.ConfigError` naming the variable" contract in
    one place). ``None`` means the variable is unset (or blank) and the
    call site's own default applies.
    """

    #: ``REPRO_SEED`` — base RNG seed for sweeps/examples (default 0).
    seed: int = 0
    #: ``REPRO_JOBS`` — parallel sweep workers.
    jobs: Optional[int] = None
    #: ``REPRO_MIXES`` — batch mixes per workload (paper scale: 40).
    mixes: Optional[int] = None
    #: ``REPRO_EPOCHS`` — 100 ms epochs per run (paper scale: 25).
    epochs: Optional[int] = None
    #: ``REPRO_CELL_TIMEOUT`` — per-cell wall-clock budget in seconds.
    cell_timeout: Optional[float] = None
    #: ``REPRO_CHECKPOINT`` — sweep checkpoint journal path.
    checkpoint: Optional[str] = None
    #: ``REPRO_CACHE_DIR`` — result-cache directory.
    cache_dir: Optional[str] = None
    #: ``REPRO_TRACE`` — default ``--trace-out`` path for run/figure.
    trace: Optional[str] = None
    #: ``REPRO_METRICS`` — default ``--metrics-out`` path for run/figure.
    metrics: Optional[str] = None
    #: ``REPRO_FLEET_CHIPS`` — default ``repro fleet run`` fleet size.
    fleet_chips: Optional[int] = None
    #: ``REPRO_FLEET_EPOCHS`` — default ``repro fleet run`` epoch count.
    fleet_epochs: Optional[int] = None
    #: ``REPRO_FLEET_CHECKPOINT`` — default ``repro fleet run
    #: --checkpoint`` journal path (crash-safe resume).
    fleet_checkpoint: Optional[str] = None
    #: ``REPRO_BENCH_MIXES`` — default ``bench --suite model`` mix count.
    bench_mixes: Optional[int] = None
    #: ``REPRO_BENCH_EPOCHS`` — default ``bench --suite model`` epochs.
    bench_epochs: Optional[int] = None
    #: ``REPRO_SHM_ARENA_BYTES`` — shared-memory result arena size for
    #: parallel sweeps (0 disables the arena; results then travel
    #: through the pool pipe as pickles).
    shm_arena_bytes: Optional[int] = None
    #: ``REPRO_SERVE_HOST`` — default bind address for ``repro serve``.
    serve_host: Optional[str] = None
    #: ``REPRO_SERVE_PORT`` — default port for ``repro serve`` (0 asks
    #: the OS for an ephemeral port).
    serve_port: Optional[int] = None
    #: ``REPRO_SERVE_MAX_BODY`` — request-body byte bound for the serve
    #: daemon; oversized bodies are rejected with 413.
    serve_max_body: Optional[int] = None

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> "Settings":
        """Parse the environment (or a mapping standing in for it)."""
        env = os.environ if environ is None else environ
        seed_raw = _clean(env, "REPRO_SEED")
        if seed_raw is None:
            seed = 0
        else:
            try:
                seed = int(seed_raw)
            except ValueError:
                raise ConfigError(
                    f"REPRO_SEED must be an integer, got {seed_raw!r}"
                ) from None
        timeout_raw = _clean(env, "REPRO_CELL_TIMEOUT")
        timeout: Optional[float] = None
        if timeout_raw is not None:
            try:
                timeout = float(timeout_raw)
            except ValueError:
                raise ConfigError(
                    "REPRO_CELL_TIMEOUT must be a number of seconds, "
                    f"got {timeout_raw!r}"
                ) from None
            if timeout <= 0:
                raise ConfigError(
                    "REPRO_CELL_TIMEOUT must be a positive number of "
                    f"seconds, got {timeout_raw!r}"
                )
        return cls(
            seed=seed,
            jobs=_positive_int(env, "REPRO_JOBS"),
            mixes=_positive_int(env, "REPRO_MIXES"),
            epochs=_positive_int(env, "REPRO_EPOCHS"),
            cell_timeout=timeout,
            checkpoint=_clean(env, "REPRO_CHECKPOINT"),
            cache_dir=_clean(env, "REPRO_CACHE_DIR"),
            trace=_clean(env, "REPRO_TRACE"),
            metrics=_clean(env, "REPRO_METRICS"),
            fleet_chips=_positive_int(env, "REPRO_FLEET_CHIPS"),
            fleet_epochs=_positive_int(env, "REPRO_FLEET_EPOCHS"),
            fleet_checkpoint=_clean(env, "REPRO_FLEET_CHECKPOINT"),
            bench_mixes=_positive_int(env, "REPRO_BENCH_MIXES"),
            bench_epochs=_positive_int(env, "REPRO_BENCH_EPOCHS"),
            shm_arena_bytes=_nonneg_int(env, "REPRO_SHM_ARENA_BYTES"),
            serve_host=_clean(env, "REPRO_SERVE_HOST"),
            serve_port=_nonneg_int(env, "REPRO_SERVE_PORT"),
            serve_max_body=_positive_int(env, "REPRO_SERVE_MAX_BODY"),
        )
