"""Batched multi-mix epoch engine.

Sweeps evaluate one design against many workload mixes. Run naively,
that is N independent epoch loops, each paying per-epoch Python
dispatch for its own handful of LC queueing simulators. The
:class:`BatchSystemModel` drives all N mixes in lockstep instead: every
epoch it runs phase 1 (placement) for each mix, then advances *every*
LC simulator of *every* mix with a single fused
:func:`~repro.sim.queueing.run_epoch_batch` kernel call — the Lindley
recurrence scan runs once over an ``(N x apps, width)`` matrix instead
of ``N x apps`` times over vectors — and finally phase 3 (feedback,
tails, batch perf, vulnerability, energy) per mix.

Because each mix keeps its own :class:`~repro.model.system.SystemModel`
(its own runtime, controller, RNG streams, and caches), and the fused
kernel is bit-identical to per-simulator stepping, every per-mix
:class:`~repro.model.system.RunResult` is bit-identical to running that
mix alone — the batching changes wall-clock, never results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import ControllerConfig, Engine, RECONFIG_INTERVAL_CYCLES
from ..core.designs import make_design
from ..sim.queueing import run_epoch_batch
from .system import RunResult, SystemModel
from .workload import WorkloadSpec

__all__ = ["BatchStageTimes", "BatchSystemModel", "run_design_batch"]


@dataclass
class BatchStageTimes:
    """Wall-clock seconds per pipeline stage of one batched run."""

    #: Placement phases computed from scratch (placer kernels).
    placer: float = 0.0
    #: Placement phases served from the runtime's placement memo.
    memo: float = 0.0
    #: The fused LC queueing kernel across all mixes.
    queueing: float = 0.0
    #: Feedback, tails, batch perf, vulnerability, and energy.
    metrics: float = 0.0

    def total(self) -> float:
        """Seconds across all stages."""
        return self.placer + self.memo + self.queueing + self.metrics

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for JSON reports."""
        return {
            "placer": self.placer,
            "memo": self.memo,
            "queueing": self.queueing,
            "metrics": self.metrics,
        }


class BatchSystemModel:
    """Drive one design over many mixes in lockstep epochs.

    ``seeds`` gives each mix's simulation seed (defaults to ``0`` for
    every mix); results are bit-identical to
    ``SystemModel(design, workloads[i], seed=seeds[i]).run(...)`` per
    mix. The reference engine is refused: it exists to stay a scalar
    baseline, and batching it would leave nothing to differentially
    test the batch kernels against.
    """

    def __init__(
        self,
        design_name: str,
        workloads: Sequence[WorkloadSpec],
        seeds: Optional[Sequence[int]] = None,
        controller_config: Optional[ControllerConfig] = None,
        engine: str = Engine.BATCH,
        epoch_cycles: int = RECONFIG_INTERVAL_CYCLES,
        **design_kwargs,
    ):
        engine = Engine.validate(engine, source="BatchSystemModel")
        if not Engine.accelerated(engine):
            raise ValueError(
                "BatchSystemModel requires an accelerated engine "
                "(the reference engine is the scalar baseline)"
            )
        if seeds is None:
            seeds = [0] * len(workloads)
        if len(seeds) != len(workloads):
            raise ValueError(
                f"{len(workloads)} workloads but {len(seeds)} seeds"
            )
        self.engine = engine
        #: Per-mix models; each holds its own design instance so
        #: design-level state (feedback, memos) never leaks across mixes.
        self.models: List[SystemModel] = [
            SystemModel(
                make_design(design_name, **design_kwargs),
                workload,
                seed=seed,
                controller_config=controller_config,
                epoch_cycles=epoch_cycles,
                engine=engine,
            )
            for workload, seed in zip(workloads, seeds)
        ]
        #: Filled by :meth:`run`.
        self.stage_times = BatchStageTimes()

    # -- bookkeeping ------------------------------------------------------------------

    @property
    def memo_hits(self) -> int:
        """Whole-placement memo hits across all mixes."""
        return sum(m.runtime.memo_hits for m in self.models)

    @property
    def subepoch_hits(self) -> int:
        """Sub-epoch (per-app descriptor) memo hits across all mixes."""
        return sum(m.runtime.subepoch_hits for m in self.models)

    # -- main loop -------------------------------------------------------------------

    def run(self, num_epochs: int = 20) -> List[RunResult]:
        """Advance every mix by ``num_epochs`` lockstep epochs."""
        times = BatchStageTimes()
        self.stage_times = times
        states = [m._run_begin(num_epochs) for m in self.models]
        for epoch in range(num_epochs):
            # Phase 1: placement per mix (timed as memo when the
            # runtime's placement memo supplied the allocation).
            preps = []
            for model in self.models:
                t0 = time.perf_counter()
                prep = model._epoch_begin(epoch)
                dt = time.perf_counter() - t0
                if prep.memo_hit:
                    times.memo += dt
                else:
                    times.placer += dt
                preps.append(prep)
            # Phase 2: one fused queueing kernel across all mixes.
            t0 = time.perf_counter()
            sims, means, spans = [], [], []
            for model, prep in zip(self.models, preps):
                apps = model.workload.lc_apps
                spans.append((len(sims), apps))
                sims.extend(model._lc_sims[a] for a in apps)
                means.extend(prep.services[a] for a in apps)
            results = run_epoch_batch(
                sims, self.models[0].epoch_cycles, means
            ) if sims else []
            lat_maps = [
                {
                    a: list(results[start + i].latencies_cycles)
                    for i, a in enumerate(apps)
                }
                for start, apps in spans
            ]
            times.queueing += time.perf_counter() - t0
            # Phase 3: feedback + metrics per mix.
            t0 = time.perf_counter()
            for model, prep, lc_lats, state in zip(
                self.models, preps, lat_maps, states
            ):
                model._epoch_finish(epoch, prep, lc_lats, state)
            times.metrics += time.perf_counter() - t0
        return [
            m._run_result(s) for m, s in zip(self.models, states)
        ]


def _run_design_batch(
    design_name: str,
    workloads: Sequence[WorkloadSpec],
    num_epochs: int = 20,
    seeds: Optional[Sequence[int]] = None,
    controller_config: Optional[ControllerConfig] = None,
    engine: str = Engine.BATCH,
    **design_kwargs,
) -> List[RunResult]:
    """Run one design over many mixes, batched (internal impl).

    Per-mix results are bit-identical to the single-workload path with
    the same seed.
    """
    model = BatchSystemModel(
        design_name,
        workloads,
        seeds=seeds,
        controller_config=controller_config,
        engine=engine,
        **design_kwargs,
    )
    return model.run(num_epochs)


def run_design_batch(
    design_name: str,
    workloads: Sequence[WorkloadSpec],
    num_epochs: int = 20,
    seeds: Optional[Sequence[int]] = None,
    controller_config: Optional[ControllerConfig] = None,
    engine: str = Engine.BATCH,
    **design_kwargs,
) -> List[RunResult]:
    """Deprecated alias for :func:`repro.model.api.run_model`.

    Use ``run_model(design=..., workloads=...)``; this wrapper warns
    once per process and delegates unchanged.
    """
    from ._deprecation import warn_once

    warn_once(
        "run_design_batch", "run_model(design=..., workloads=...)"
    )
    return _run_design_batch(
        design_name,
        workloads,
        num_epochs=num_epochs,
        seeds=seeds,
        controller_config=controller_config,
        engine=engine,
        **design_kwargs,
    )
