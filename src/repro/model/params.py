"""Tunable parameters of the analytic performance model.

These constants close the gap between the substitute workloads and the
paper's testbed. They are *not* per-experiment knobs: one set of values
is used for every figure, exactly as one simulator configuration was
used for the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelParams", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class ModelParams:
    """Constants of the batch IPC and service-time models."""

    #: Memory-level parallelism: outstanding misses overlap, deflating the
    #: effective per-miss stall below the raw memory latency.
    mlp: float = 1.6

    #: Associativity penalty: partitioned apps with few ways per bank see
    #: inflated miss rates, ``1 + beta * (1/ways - 1/full_ways)``.
    assoc_beta: float = 0.35

    #: Fraction of L2 misses (LLC accesses) that stall the core; OOO
    #: cores hide part of the LLC access latency.
    llc_stall_fraction: float = 0.55

    #: Miss-rate inflation for *unpartitioned* batch apps sharing LLC
    #: space: free-for-all LRU/DRRIP occupancy is worse than a
    #: utility-optimal partition of the same capacity (the observation
    #: motivating UCP), and thrashing co-runners pollute beyond their
    #: proportional share.
    sharing_penalty: float = 1.06

    #: Number of warm-up epochs excluded from measurement (the feedback
    #: controller needs a few windows to settle).
    warmup_epochs: int = 5

    def assoc_penalty(self, ways: float, full_ways: int = 32) -> float:
        """Miss-rate inflation from partitioned associativity.

        An app with no allocation at all misses at its curve's zero-size
        rate already — there is no partition to constrain — so the
        penalty only applies to thin but non-empty partitions.
        """
        if ways <= 0 or ways >= full_ways:
            return 1.0
        # Very thin partitions saturate at one way's worth of penalty.
        return 1.0 + self.assoc_beta * (min(1.0, 1.0 / ways) - 1.0 / full_ways)


DEFAULT_PARAMS = ModelParams()
