"""Warn-once plumbing for the deprecated model entry points.

``run_design`` / ``run_design_batch`` / ``run_workload`` stay importable
from their original modules as thin aliases over
:func:`repro.model.api.run_model`, but each fires a single
``DeprecationWarning`` per process — once is a signal, per-call is
noise in a sweep that invokes the entry point thousands of times.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_once", "reset_warnings"]

_WARNED: Set[str] = set()


def warn_once(name: str, replacement: str) -> None:
    """Emit one ``DeprecationWarning`` per process for ``name``."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_warnings() -> None:
    """Forget which aliases warned (test hook)."""
    _WARNED.clear()
