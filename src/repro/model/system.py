"""Epoch-level system simulation: one design x one workload -> metrics.

The driver mirrors the structure of the paper's evaluation runs. Each
100 ms epoch:

1. the runtime reconfigures the LLC (the active design's placement,
   using the feedback controller's current LC sizes);
2. each latency-critical app's request stream advances through the
   queueing simulator with a mean service time derived from its current
   allocation size and NoC proximity — completions feed the controller
   exactly as in the paper's Listing 1;
3. each batch app's IPC is evaluated under the allocation;
4. security vulnerability and data-movement energy are accounted.

Deadlines follow the paper's methodology: the 95th-percentile latency of
the app running in isolation at high load with four LLC ways under
way-partitioning (S-NUCA).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import (
    CORE_FREQ_HZ,
    RECONFIG_INTERVAL_CYCLES,
    ControllerConfig,
    Engine,
    SystemConfig,
)
from ..core.allocation import Allocation
from ..core.designs import (
    JumanjiIdealBatchDesign,
    LlcDesign,
    make_design,
)
from ..core.runtime import JumanjiRuntime
from ..metrics.security import (
    potential_attackers_per_access,
    potential_attackers_per_access_fast,
)
from ..metrics.speedup import weighted_speedup
from ..noc.energy import EnergyBreakdown, EnergyModel
from ..noc.mesh import MeshNoc
from ..sim.queueing import (
    LcRequestSimulator,
    percentile,
    run_epoch_batch,
)
from ..workloads.mixes import base_app
from ..workloads.tailbench import (
    LatencyCriticalProfile,
    REFERENCE_ALLOC_MB,
    get_lc_profile,
)
from .params import DEFAULT_PARAMS, ModelParams
from .performance import batch_perf, lc_service_cycles, snuca_avg_rtt
from .workload import WorkloadSpec

__all__ = [
    "EpochMetrics",
    "RunResult",
    "SystemModel",
    "compute_deadline_cycles",
    "deadline_cache_info",
    "run_design",
]


# Bounded: the key space is (lc profile, seed, epochs, router_delay)
# and sweeps only ever use a handful of combinations, but a long-lived
# driver process sweeping router delays or seeds should not grow this
# without limit. 256 entries is two orders of magnitude above any
# current sweep's working set; the bench suite asserts the bound holds.
@functools.lru_cache(maxsize=256)
def _deadline_cached(
    lc_name: str, seed: int, epochs: int, router_delay: int
) -> float:
    profile = get_lc_profile(lc_name)
    config = SystemConfig().with_router_delay(router_delay)
    noc = MeshNoc(config)
    # Isolation reference: corner tile (where LC apps run), S-NUCA
    # average distance, four ways of way-partitioned associativity —
    # the paper's deadline condition.
    rtt = snuca_avg_rtt(0, noc)
    service = lc_service_cycles(
        profile, REFERENCE_ALLOC_MB, rtt, 4.0, config, DEFAULT_PARAMS
    )
    sim = LcRequestSimulator(
        qps=profile.qps.high_qps,
        service_cv=profile.service_cv,
        seed=seed,
    )
    latencies: List[float] = []
    for _ in range(epochs):
        result = sim.run_epoch(RECONFIG_INTERVAL_CYCLES, service)
        latencies.extend(result.latencies_cycles)
    # The deadline is the controller's reference signal, so it uses the
    # controller's own statistic: the p95 of each 21-request window,
    # averaged over the run. (The long-run p95 is burst-dominated at
    # high utilisation — a controller comparing 20-request windows to it
    # would read "below deadline" almost always and shrink relentlessly.)
    window = 21
    tails = [
        percentile(latencies[i : i + window], 95.0)
        for i in range(0, len(latencies) - window + 1, window)
    ]
    return float(np.mean(tails))


def compute_deadline_cycles(
    lc_name: str,
    seed: int = 12345,
    epochs: int = 40,
    router_delay: int = 2,
) -> float:
    """Deadline per the paper's methodology: tail latency in isolation at
    high load with four LLC ways under way-partitioning (S-NUCA)."""
    return _deadline_cached(lc_name, seed, epochs, router_delay)


def deadline_cache_info():
    """``cache_info()`` of the deadline memo.

    The bench suite asserts the cache is bounded (``maxsize`` set) so a
    long-lived sweep driver cannot grow it without limit.
    """
    return _deadline_cached.cache_info()


@dataclass
class EpochMetrics:
    """Per-epoch observables (time series for Figs. 4a-4c)."""

    epoch: int
    lc_tails: Dict[str, float]
    lc_sizes: Dict[str, float]
    batch_ipcs: Dict[str, float]
    vulnerability: float
    energy: EnergyBreakdown


@dataclass
class RunResult:
    """Aggregated outcome of one (design, workload) run."""

    design: str
    load: str
    epochs: List[EpochMetrics]
    lc_deadlines: Dict[str, float]
    lc_all_latencies: Dict[str, List[float]]
    warmup_epochs: int

    def lc_tail(self, app: str, pct: float = 95.0, window: int = 21) -> float:
        """Tail latency of post-warmup requests (deadline-consistent).

        Computed as the mean of per-window p95s over 21-request windows —
        the same statistic the deadline and the feedback controller use
        (see :func:`compute_deadline_cycles`). A value of 1x the deadline
        means the app is riding exactly at its target.
        """
        lats = self.lc_all_latencies[app]
        if not lats:
            return float("inf")
        if len(lats) < window:
            return percentile(lats, pct)
        tails = [
            percentile(lats[i : i + window], pct)
            for i in range(0, len(lats) - window + 1, window)
        ]
        return float(np.mean(tails))

    def lc_tail_raw(self, app: str, pct: float = 95.0) -> float:
        """Long-run p95 over all post-warmup requests (burst-dominated)."""
        lats = self.lc_all_latencies[app]
        if not lats:
            return float("inf")
        return percentile(lats, pct)

    def lc_tail_normalized(self, app: str) -> float:
        """Tail latency over the app's deadline (>1 = violation)."""
        return self.lc_tail(app) / self.lc_deadlines[app]

    def worst_lc_violation(self) -> float:
        """Max normalised tail across LC apps."""
        return max(
            self.lc_tail_normalized(a) for a in self.lc_deadlines
        )

    def batch_ipcs(self) -> Dict[str, float]:
        """Mean post-warmup IPC per batch app."""
        measured = self.epochs[self.warmup_epochs :]
        if not measured:
            measured = self.epochs
        apps = measured[0].batch_ipcs.keys()
        return {
            a: float(np.mean([e.batch_ipcs[a] for e in measured]))
            for a in apps
        }

    def avg_vulnerability(self) -> float:
        """Mean attackers-per-access over measured epochs."""
        measured = self.epochs[self.warmup_epochs :]
        if not measured:
            measured = self.epochs
        return float(np.mean([e.vulnerability for e in measured]))

    def total_energy(self) -> EnergyBreakdown:
        """Summed data-movement energy over measured epochs."""
        total = EnergyBreakdown()
        for e in self.epochs[self.warmup_epochs :]:
            total = total + e.energy
        return total

    def avg_lc_size(self) -> float:
        """Average LC allocation (MB), over apps and measured epochs."""
        measured = self.epochs[self.warmup_epochs :]
        if not measured:
            measured = self.epochs
        sizes = [
            np.mean(list(e.lc_sizes.values())) for e in measured
            if e.lc_sizes
        ]
        return float(np.mean(sizes)) if sizes else 0.0


class SystemModel:
    """Runs one design against one workload for N epochs."""

    def __init__(
        self,
        design: LlcDesign,
        workload: WorkloadSpec,
        seed: int = 0,
        controller_config: Optional[ControllerConfig] = None,
        energy_model: Optional[EnergyModel] = None,
        params: Optional[ModelParams] = None,
        epoch_cycles: int = RECONFIG_INTERVAL_CYCLES,
        engine: str = "fast",
    ):
        if epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        engine = Engine.validate(engine, source="SystemModel")
        self.design = design
        self.workload = workload
        self.config = workload.config
        self.epoch_cycles = epoch_cycles
        #: ``"fast"`` runs the vectorised epoch engine (batched queueing
        #: RNG, numpy placer kernels, placement memoisation, curve
        #: caches); ``"reference"`` runs the frozen scalar engine from
        #: :mod:`repro.model.reference` with every cache disabled. The
        #: two produce bit-identical results.
        self.engine = engine
        self.noc = MeshNoc(self.config)
        self.params = params if params is not None else workload.params
        self.energy_model = (
            energy_model if energy_model is not None else EnergyModel()
        )
        self.runtime = JumanjiRuntime(
            design,
            self.config,
            context_builder=lambda sizes: workload.build_context(
                self._effective_lat_sizes(sizes), self.noc,
                engine=self.engine,
            ),
            controller_config=controller_config,
            seed=seed,
            memoize_placement=Engine.accelerated(engine),
        )
        if engine == Engine.REFERENCE:
            from .reference import ReferenceLcRequestSimulator

            sim_cls = ReferenceLcRequestSimulator
        else:
            sim_cls = LcRequestSimulator
        self._lc_sims: Dict[str, LcRequestSimulator] = {}
        self._deadlines: Dict[str, float] = {}
        for i, app in enumerate(workload.lc_apps):
            profile = workload.lc_profile(app)
            deadline = compute_deadline_cycles(
                base_app(app), router_delay=self.config.router_delay
            )
            self._deadlines[app] = deadline
            self.runtime.register_lc_app(app, deadline)
            self._lc_sims[app] = sim_cls(
                qps=workload.qps_of(app),
                service_cv=profile.service_cv,
                seed=seed * 1000 + i,
            )
        # Identity-keyed per-allocation caches: batch IPC/rate and
        # vulnerability are pure functions of the allocation (the
        # workload is fixed per model), so epochs that install the same
        # allocation *object* — which only happens via the placement
        # memo — reuse the computed values. The reference engine builds
        # a fresh Allocation every epoch, so these never hit there.
        self._batch_cache: Optional[
            Tuple[Allocation, Dict[str, float],
                  Dict[str, Tuple[float, float, float]]]
        ] = None
        self._vuln_cache: Optional[Tuple[Allocation, float]] = None

    def _effective_lat_sizes(
        self, controller_sizes: Mapping[str, float]
    ) -> Dict[str, float]:
        """LC sizes the placer sees.

        Feedback designs use the controller's targets; Static pins four
        ways; Jigsaw passes nothing (it is goal-oblivious).
        """
        if self.design.uses_feedback:
            return dict(controller_sizes)
        if self.design.name == "Static":
            four_ways_mb = (
                self.config.llc_size_mb * 4 / self.config.llc_bank_ways
            )
            return {a: four_ways_mb for a in self.workload.lc_apps}
        return {}

    # -- per-epoch evaluation ----------------------------------------------------------

    def _lc_service(
        self, app: str, alloc: Allocation
    ) -> Tuple[float, float]:
        """Mean service cycles and LLC size for one LC app this epoch."""
        profile = self.workload.lc_profile(app)
        size = alloc.app_size(app)
        tile = self.workload.tile_of(app)
        noc_rtt = alloc.avg_noc_rtt(app, tile, self.noc)
        # Associativity penalty applies to the LC app's misses too when
        # its partition is thin (S-NUCA designs stripe it across banks).
        ways = alloc.ways_per_bank(app)
        service = lc_service_cycles(
            profile, size, noc_rtt, ways, self.config, self.params
        )
        return service, size

    def _batch_epoch(
        self, alloc: Allocation
    ) -> Tuple[Dict[str, float], Dict[str, Tuple[float, float, float]]]:
        """Batch IPCs and (accesses, misses, hops) rates for energy."""
        if (
            self._batch_cache is not None
            and self._batch_cache[0] is alloc
        ):
            _, ipcs, rates = self._batch_cache
            return dict(ipcs), dict(rates)
        ipcs: Dict[str, float] = {}
        rates: Dict[str, Tuple[float, float, float]] = {}
        overhead = self.runtime.batch_overhead_factor
        for app in self.workload.batch_apps:
            profile = self.workload.batch_profile(app)
            tile = self.workload.tile_of(app)
            perf = batch_perf(
                app, profile, tile, alloc, self.noc, self.params
            )
            ipcs[app] = perf.ipc * overhead
            # Events per cycle for the energy model.
            accesses = profile.apki * perf.ipc / 1000.0
            misses = perf.mpki_eff * perf.ipc / 1000.0
            hops = accesses * 2 * alloc.avg_noc_hops(app, tile, self.noc)
            rates[app] = (accesses, misses, hops)
        self._batch_cache = (alloc, dict(ipcs), dict(rates))
        return ipcs, rates

    def _epoch_energy(
        self,
        alloc: Allocation,
        batch_rates: Mapping[str, Tuple[float, float, float]],
        lc_latencies: Mapping[str, List[float]],
    ) -> EnergyBreakdown:
        """Dynamic energy of one epoch (batch rates + LC per-query)."""
        total = EnergyBreakdown()
        cycles = self.epoch_cycles
        for app, (acc, miss, hops) in batch_rates.items():
            profile = self.workload.batch_profile(app)
            # L1/L2 accesses estimated from instruction throughput; LLC
            # accesses already per cycle.
            ipc = acc / max(profile.apki, 1e-9) * 1000.0
            l1 = 0.3 * ipc * cycles  # ~30% of instrs touch memory
            l2 = profile.apki * 3 * ipc / 1000.0 * cycles
            total = total + self.energy_model.access_energy(
                l1, l2, acc * cycles, hops * cycles, miss * cycles
            )
        for app, lats in lc_latencies.items():
            profile = self.workload.lc_profile(app)
            queries = len(lats)
            size = (
                self.runtime.history[-1]
                .allocation.app_size(app)
                if self.runtime.history
                else REFERENCE_ALLOC_MB
            )
            tile = self.workload.tile_of(app)
            alloc_obj = self.runtime.history[-1].allocation
            hops_per_access = 2 * alloc_obj.avg_noc_hops(
                app, tile, self.noc
            )
            acc = profile.accesses_per_query * queries
            miss = profile.misses_per_query(size) * queries
            total = total + self.energy_model.access_energy(
                queries * profile.base_cycles * 0.1,
                acc * 2,
                acc,
                acc * hops_per_access,
                miss,
            )
        return total

    # -- main loop -------------------------------------------------------------------
    #
    # The epoch is split into three phases so a batch driver
    # (:mod:`repro.model.batch`) can interleave many models:
    # ``_epoch_begin`` (placement + service-time computation),
    # the LC queueing simulation (``_epoch_sim`` here; one fused
    # :func:`~repro.sim.queueing.run_epoch_batch` call across all mixes
    # in the batch engine), and ``_epoch_finish`` (feedback, tails,
    # batch IPCs, vulnerability, energy). Phase boundaries only reorder
    # operations that are independent — every per-app computation
    # sequence is unchanged, so results stay bit-identical to the
    # un-split loop.

    def _run_begin(self, num_epochs: int) -> "_RunState":
        """Validate and build the accumulator state for one run."""
        if num_epochs < 1:
            raise ValueError("need at least one epoch")
        warmup = min(self.params.warmup_epochs, max(num_epochs - 1, 0))
        vm_map = {
            a: self.workload.vm_of(a)
            for vm in self.workload.vms
            for a in vm.apps
        }
        # Access intensity is a pure function of the (fixed) workload;
        # hoisted out of the epoch loop.
        intensity = {
            a: self.workload.batch_profile(a).apki
            for a in self.workload.batch_apps
        }
        intensity.update(
            {
                a: self.workload.lc_profile(a).accesses_per_query
                * self.workload.qps_of(a)
                / 1e6
                for a in self.workload.lc_apps
            }
        )
        return _RunState(
            warmup=warmup,
            vm_map=vm_map,
            intensity=intensity,
            all_latencies={a: [] for a in self.workload.lc_apps},
        )

    def _epoch_begin(self, epoch: int) -> "_EpochPrep":
        """Phase 1: reconfigure placement, compute LC service times."""
        record = self.runtime.reconfigure()
        alloc = record.allocation
        if isinstance(self.design, JumanjiIdealBatchDesign):
            ctx = self.workload.build_context(
                self._effective_lat_sizes(self.runtime.lat_sizes()),
                self.noc,
                engine=self.engine,
            )
            batch_alloc = self.design.allocate_batch(ctx)
        else:
            batch_alloc = alloc
        services: Dict[str, float] = {}
        sizes: Dict[str, float] = {}
        for app in self.workload.lc_apps:
            services[app], sizes[app] = self._lc_service(app, alloc)
        return _EpochPrep(
            alloc=alloc,
            batch_alloc=batch_alloc,
            services=services,
            sizes=sizes,
            memo_hit=record.memo_hit,
        )

    def _epoch_sim(self, prep: "_EpochPrep") -> Dict[str, List[float]]:
        """Phase 2: advance every LC queueing simulator by one epoch."""
        apps = self.workload.lc_apps
        if self.engine == Engine.BATCH and apps:
            results = run_epoch_batch(
                [self._lc_sims[a] for a in apps],
                self.epoch_cycles,
                [prep.services[a] for a in apps],
            )
            return {
                a: list(r.latencies_cycles)
                for a, r in zip(apps, results)
            }
        return {
            a: list(
                self._lc_sims[a]
                .run_epoch(self.epoch_cycles, prep.services[a])
                .latencies_cycles
            )
            for a in apps
        }

    def _epoch_finish(
        self,
        epoch: int,
        prep: "_EpochPrep",
        lc_lats: Dict[str, List[float]],
        state: "_RunState",
    ) -> None:
        """Phase 3: feedback, tails, batch perf, vulnerability, energy."""
        lc_tails: Dict[str, float] = {}
        for app in self.workload.lc_apps:
            lats = lc_lats[app]
            if self.design.uses_feedback:
                # Batched feedback: identical to reporting each
                # completion from an on_complete callback — the
                # controller only consumes its window at epoch
                # boundaries, and per-sample order is preserved.
                self.runtime.report_latencies(app, lats)
            lc_tails[app] = (
                percentile(lats, 95.0) if lats else float("nan")
            )
            if epoch >= state.warmup:
                state.all_latencies[app].extend(lats)
        if obs.is_enabled():
            # Deterministic for a fixed seed: the ratio comes from the
            # seeded queueing simulation, not a clock.
            for app, tail in lc_tails.items():
                deadline = self._deadlines.get(app)
                if deadline and tail == tail:  # skip NaN
                    obs.observe(
                        "model.lc_tail_vs_deadline",
                        tail / deadline,
                        edges=obs.RATIO_EDGES,
                    )
        batch_alloc = prep.batch_alloc
        ipcs, rates = self._batch_epoch(batch_alloc)
        # Vulnerability over the allocation actually serving traffic.
        if (
            self._vuln_cache is not None
            and self._vuln_cache[0] is batch_alloc
        ):
            vuln = self._vuln_cache[1]
        else:
            vuln_fn = (
                potential_attackers_per_access_fast
                if Engine.accelerated(self.engine)
                else potential_attackers_per_access
            )
            vuln = vuln_fn(batch_alloc, state.vm_map, state.intensity)
            self._vuln_cache = (batch_alloc, vuln)
        energy = self._epoch_energy(batch_alloc, rates, lc_lats)
        state.epochs.append(
            EpochMetrics(
                epoch=epoch,
                lc_tails=lc_tails,
                lc_sizes=dict(prep.sizes),
                batch_ipcs=ipcs,
                vulnerability=vuln,
                energy=energy,
            )
        )

    def _run_result(self, state: "_RunState") -> RunResult:
        """Package the accumulated epochs as a :class:`RunResult`."""
        return RunResult(
            design=self.design.name,
            load=self.workload.load,
            epochs=state.epochs,
            lc_deadlines=dict(self._deadlines),
            lc_all_latencies=state.all_latencies,
            warmup_epochs=state.warmup,
        )

    def run(self, num_epochs: int = 20) -> RunResult:
        """Simulate ``num_epochs`` 100 ms epochs."""
        state = self._run_begin(num_epochs)
        for epoch in range(num_epochs):
            with obs.span(
                "model.epoch", epoch=epoch, design=self.design.name,
            ):
                prep = self._epoch_begin(epoch)
                lc_lats = self._epoch_sim(prep)
                self._epoch_finish(epoch, prep, lc_lats, state)
        return self._run_result(state)


@dataclass
class _EpochPrep:
    """Phase-1 outputs of one epoch, pending the LC simulation."""

    alloc: Allocation
    batch_alloc: Allocation
    #: LC app -> mean service cycles at this epoch's placement.
    services: Dict[str, float]
    #: LC app -> LLC MB (reported as ``lc_sizes``).
    sizes: Dict[str, float]
    #: Whether the placement came out of the runtime's memo.
    memo_hit: bool


@dataclass
class _RunState:
    """Accumulators threaded through one model's epochs."""

    warmup: int
    vm_map: Dict[str, int]
    intensity: Dict[str, float]
    epochs: List[EpochMetrics] = field(default_factory=list)
    all_latencies: Dict[str, List[float]] = field(default_factory=dict)


def _run_design(
    design_name: str,
    workload: WorkloadSpec,
    num_epochs: int = 20,
    seed: int = 0,
    controller_config: Optional[ControllerConfig] = None,
    engine: str = "fast",
    **design_kwargs,
) -> RunResult:
    """Build and run one design against a workload (internal impl)."""
    design = make_design(design_name, **design_kwargs)
    model = SystemModel(
        design,
        workload,
        seed=seed,
        controller_config=controller_config,
        engine=engine,
    )
    return model.run(num_epochs)


def run_design(
    design_name: str,
    workload: WorkloadSpec,
    num_epochs: int = 20,
    seed: int = 0,
    controller_config: Optional[ControllerConfig] = None,
    engine: str = "fast",
    **design_kwargs,
) -> RunResult:
    """Deprecated alias for :func:`repro.model.api.run_model`.

    Use ``run_model(design=..., workload=...)``; this wrapper warns
    once per process and delegates unchanged.
    """
    from ._deprecation import warn_once

    warn_once("run_design", "run_model(design=..., workload=...)")
    return _run_design(
        design_name,
        workload,
        num_epochs=num_epochs,
        seed=seed,
        controller_config=controller_config,
        engine=engine,
        **design_kwargs,
    )
