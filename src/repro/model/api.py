"""The unified model entry point: one call, ``engine=`` dispatch.

Historically the package grew three overlapping front doors —
``run_design`` (one workload), ``run_design_batch`` (many workloads,
fused engine), and ``experiments.common.run_workload`` (a named LC
workload plus the speedup/tail/energy bookkeeping of a sweep cell).
:func:`run_model` consolidates them behind one keyword-only signature;
the old names remain as thin deprecated aliases that warn once per
process.

Exactly one of ``workload`` / ``workloads`` / ``lc_workload`` selects
the mode, and the return type follows it:

======================= ==========================================
argument                returns
======================= ==========================================
``workload=``           :class:`~repro.model.system.RunResult`
``workloads=``          ``List[RunResult]`` (batched engine)
``lc_workload=``        ``(WorkloadOutcome, RunResult, ipcs)`` —
                        the sweep-cell triple
======================= ==========================================

``engine`` defaults to the mode's historical engine (``fast`` for a
single workload, ``batch`` otherwise); all engines are bit-identical,
so the choice is purely a performance knob.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..config import ControllerConfig, Engine, SystemConfig
from ..errors import ConfigError
from .system import RunResult, _run_design
from .workload import WorkloadSpec

__all__ = ["run_model"]


def run_model(
    *,
    design: str,
    workload: Optional[WorkloadSpec] = None,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    lc_workload: Optional[str] = None,
    load: str = "high",
    mix_seed: int = 0,
    config: Optional[SystemConfig] = None,
    baseline_ipcs: Optional[Mapping[str, float]] = None,
    epochs: Optional[int] = None,
    seed: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    base_seed: int = 0,
    controller_config: Optional[ControllerConfig] = None,
    engine: Optional[str] = None,
    design_kwargs: Optional[Dict[str, Any]] = None,
):
    """Run ``design`` against exactly one workload selector.

    * ``workload=`` — one :class:`~repro.model.workload.WorkloadSpec`;
      honours ``epochs`` (default 20) and ``seed`` (default 0).
    * ``workloads=`` — a sequence of specs through the fused batch
      engine; honours ``epochs`` and per-mix ``seeds``.
    * ``lc_workload=`` — a named LC workload (``"xapian"``, ...,
      ``"Mixed"``); builds the paper's default mix from ``load`` /
      ``mix_seed`` / ``config`` and returns the sweep-cell triple
      ``(outcome, result, baseline_ipcs)``. ``epochs`` defaults to the
      ``REPRO_EPOCHS`` setting and the cell seed is derived from
      ``base_seed`` / ``mix_seed``.

    ``design_kwargs`` are forwarded to
    :func:`~repro.core.designs.make_design` (sensitivity variants).
    """
    chosen = [
        name
        for name, value in (
            ("workload", workload),
            ("workloads", workloads),
            ("lc_workload", lc_workload),
        )
        if value is not None
    ]
    if len(chosen) != 1:
        raise ConfigError(
            "run_model needs exactly one of workload=, workloads=, "
            f"lc_workload=; got {chosen or 'none'}"
        )
    kwargs = dict(design_kwargs) if design_kwargs else {}

    if workload is not None:
        if engine is None:
            engine = Engine.FAST
        engine = Engine.validate(engine, source="run_model")
        return _run_design(
            design,
            workload,
            num_epochs=epochs if epochs is not None else 20,
            seed=seed if seed is not None else 0,
            controller_config=controller_config,
            engine=engine,
            **kwargs,
        )

    if workloads is not None:
        from .batch import _run_design_batch

        if engine is None:
            engine = Engine.BATCH
        engine = Engine.validate(engine, source="run_model")
        return _run_design_batch(
            design,
            workloads,
            num_epochs=epochs if epochs is not None else 20,
            seeds=list(seeds) if seeds is not None else None,
            controller_config=controller_config,
            engine=engine,
            **kwargs,
        )

    # Named LC workload: the sweep-cell path. Imported lazily — the
    # experiments package imports this module's neighbours.
    from ..experiments.common import _run_workload

    if seeds is not None:
        raise ConfigError(
            "seeds= applies to workloads=; use base_seed/mix_seed "
            "with lc_workload="
        )
    if controller_config is not None:
        raise ConfigError(
            "controller_config= applies to workload=/workloads= modes"
        )
    if engine is None:
        engine = Engine.BATCH
    engine = Engine.validate(engine, source="run_model")
    return _run_workload(
        design,
        lc_workload,
        load,
        mix_seed,
        epochs=epochs,
        config=config,
        baseline_ipcs=baseline_ipcs,
        base_seed=base_seed,
        engine=engine,
        **kwargs,
    )
