"""Workload specification and placement-context construction.

A :class:`WorkloadSpec` binds the VM layout (which app instance runs on
which core) to the analytic profiles and the load level, and knows how
to build the :class:`~repro.core.context.PlacementContext` the placement
algorithms consume — converting each profile's MPKI/misses-per-query
curve into a misses-per-kilocycle curve so marginal utilities are
commensurable across batch and latency-critical apps (as UMON hardware
reports them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cache.misscurve import MissCurve
from ..config import CORE_FREQ_HZ, SystemConfig, VmSpec
from ..core.context import AppInfo, PlacementContext
from ..noc.mesh import MeshNoc
from ..workloads.mixes import base_app, build_vms, random_batch_mix
from ..workloads.spec import BatchAppProfile, get_profile
from ..workloads.tailbench import LatencyCriticalProfile, get_lc_profile
from .params import DEFAULT_PARAMS, ModelParams
from .performance import estimate_ipc

__all__ = ["WorkloadSpec", "make_default_workload"]

#: Miss curves are sampled on this grid for placement decisions.
CURVE_STEP_MB = 0.125
CURVE_POINTS = 176  # covers 0..21.875 MB, beyond the 20 MB LLC


@dataclass
class WorkloadSpec:
    """One machine-level workload: VMs, app instances, and load."""

    config: SystemConfig
    vms: Sequence[VmSpec]
    load: str = "high"
    params: ModelParams = field(default_factory=lambda: DEFAULT_PARAMS)

    def __post_init__(self) -> None:
        if self.load not in ("low", "high"):
            raise ValueError("load must be 'low' or 'high'")
        self._tiles: Dict[str, int] = {}
        for vm in self.vms:
            for core, app in zip(vm.cores, vm.apps):
                self._tiles[app] = core
        self._lc_profiles: Dict[str, LatencyCriticalProfile] = {
            a: get_lc_profile(base_app(a))
            for vm in self.vms
            for a in vm.lc_apps
        }
        self._batch_profiles: Dict[str, BatchAppProfile] = {
            a: get_profile(base_app(a))
            for vm in self.vms
            for a in vm.batch_apps
        }
        # Per-app (curve, intensity) cache for the fast engine: the
        # analytic profiles and the load level are fixed for the
        # spec's lifetime, so the 176-point curves need building only
        # once instead of every epoch. The reference engine bypasses
        # this (build_context(engine="reference")) to keep the scalar
        # baseline's per-epoch rebuild cost.
        self._curve_cache: Dict[str, Tuple[MissCurve, float]] = {}

    # -- lookups -------------------------------------------------------------------

    @property
    def lc_apps(self) -> List[str]:
        """LC app instance ids, in VM order."""
        return [a for vm in self.vms for a in vm.lc_apps]

    @property
    def batch_apps(self) -> List[str]:
        """Batch app instance ids, in VM order."""
        return [a for vm in self.vms for a in vm.batch_apps]

    def tile_of(self, app: str) -> int:
        """The core/tile an app instance runs on."""
        return self._tiles[app]

    def vm_of(self, app: str) -> int:
        """The VM id owning an app instance."""
        for vm in self.vms:
            if app in vm.apps:
                return vm.vm_id
        raise KeyError(f"unknown app {app!r}")

    def lc_profile(self, app: str) -> LatencyCriticalProfile:
        """The LC profile behind an instance id."""
        return self._lc_profiles[app]

    def batch_profile(self, app: str) -> BatchAppProfile:
        """The batch profile behind an instance id."""
        return self._batch_profiles[app]

    def qps_of(self, app: str) -> float:
        """The instance's arrival rate at this workload's load level."""
        return self._lc_profiles[app].qps_at(self.load)

    # -- thread migration -----------------------------------------------------------

    def migrate(self, app_a: str, app_b: str) -> None:
        """Swap two apps' cores (thread migration).

        Prior D-NUCAs — and Jumanji (Sec. IV-B) — migrate LLC
        allocations along with threads: after a swap, the next
        reconfiguration places each app's data near its *new* core, so
        migration costs one coherence walk rather than a permanent
        penalty. Swapping (rather than moving to a free core) keeps the
        one-app-per-core invariant of the evaluation setup.
        """
        if app_a not in self._tiles or app_b not in self._tiles:
            missing = [
                a for a in (app_a, app_b) if a not in self._tiles
            ]
            raise KeyError(f"unknown app(s): {missing}")
        self._tiles[app_a], self._tiles[app_b] = (
            self._tiles[app_b],
            self._tiles[app_a],
        )

    # -- placement-context construction ----------------------------------------------

    def _batch_curve(self, app: str) -> Tuple[MissCurve, float]:
        """(misses-per-kilocycle curve, accesses-per-kilocycle) for a
        batch app, converting MPKI via an IPC estimate at a fair share."""
        profile = self._batch_profiles[app]
        fair_mb = self.config.llc_size_mb / max(
            1, len(self.batch_apps) + len(self.lc_apps)
        )
        ipc_est = estimate_ipc(
            profile, fair_mb, 16.0, self.config, self.params
        )
        values = [
            profile.mpki(i * CURVE_STEP_MB) * ipc_est
            for i in range(CURVE_POINTS)
        ]
        intensity = profile.apki * ipc_est
        return MissCurve(values, CURVE_STEP_MB), intensity

    def _lc_curve(self, app: str) -> Tuple[MissCurve, float]:
        """(misses-per-kilocycle curve, accesses-per-kilocycle) for an LC
        app at the current load's QPS."""
        profile = self._lc_profiles[app]
        qps = self.qps_of(app)
        per_kcycle = qps / (CORE_FREQ_HZ / 1000.0)
        values = [
            profile.misses_per_query(i * CURVE_STEP_MB) * per_kcycle
            for i in range(CURVE_POINTS)
        ]
        intensity = profile.accesses_per_query * per_kcycle
        return MissCurve(values, CURVE_STEP_MB), intensity

    def _curve_of(
        self, app: str, is_lc: bool, use_cache: bool
    ) -> Tuple[MissCurve, float]:
        if use_cache:
            hit = self._curve_cache.get(app)
            if hit is None:
                hit = (
                    self._lc_curve(app)
                    if is_lc
                    else self._batch_curve(app)
                )
                self._curve_cache[app] = hit
            return hit
        return self._lc_curve(app) if is_lc else self._batch_curve(app)

    def build_context(
        self,
        lat_sizes: Mapping[str, float],
        noc: Optional[MeshNoc] = None,
        engine: str = "fast",
    ) -> PlacementContext:
        """Build the placement context for one reconfiguration.

        ``engine`` selects the placement implementation the context's
        consumers will use (``"fast"`` or ``"reference"``, see
        :mod:`repro.model.reference`); the reference path also rebuilds
        the miss curves from the profiles instead of using the per-spec
        cache.
        """
        noc = noc if noc is not None else MeshNoc(self.config)
        use_cache = engine != "reference"
        apps: Dict[str, AppInfo] = {}
        for vm in self.vms:
            for app in vm.lc_apps:
                curve, intensity = self._curve_of(app, True, use_cache)
                apps[app] = AppInfo(
                    name=app,
                    tile=self.tile_of(app),
                    vm_id=vm.vm_id,
                    is_lc=True,
                    curve=curve,
                    intensity=intensity,
                )
            for app in vm.batch_apps:
                curve, intensity = self._curve_of(app, False, use_cache)
                apps[app] = AppInfo(
                    name=app,
                    tile=self.tile_of(app),
                    vm_id=vm.vm_id,
                    is_lc=False,
                    curve=curve,
                    intensity=intensity,
                )
        return PlacementContext(
            config=self.config,
            noc=noc,
            vms=list(self.vms),
            apps=apps,
            lat_sizes=dict(lat_sizes),
            engine=engine,
        )


def make_default_workload(
    lc_apps: Sequence[str],
    mix_seed: int,
    load: str = "high",
    config: Optional[SystemConfig] = None,
    batch_apps: Optional[Sequence[str]] = None,
) -> WorkloadSpec:
    """The paper's default 4 x (1 LC + 4 B) workload.

    ``lc_apps`` is either one name (replicated to all four VMs) or four
    names (the 'Mixed' workloads). The batch mix is drawn from
    ``mix_seed`` unless given explicitly.
    """
    config = config if config is not None else SystemConfig()
    lc_list = list(lc_apps)
    if len(lc_list) == 1:
        lc_list = lc_list * 4
    if len(lc_list) != 4:
        raise ValueError("need one or four LC app names")
    batch = (
        list(batch_apps)
        if batch_apps is not None
        else list(random_batch_mix(mix_seed))
    )
    vms = build_vms(lc_list, batch, config)
    return WorkloadSpec(config=config, vms=vms, load=load)
