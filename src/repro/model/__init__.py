"""Analytic model layer: performance model, workloads, system driver."""

from .api import run_model
from .params import DEFAULT_PARAMS, ModelParams
from .performance import BatchPerf, batch_perf, estimate_ipc, snuca_avg_rtt
from .system import (
    EpochMetrics,
    RunResult,
    SystemModel,
    compute_deadline_cycles,
    run_design,
)
from .workload import WorkloadSpec, make_default_workload

__all__ = [
    "ModelParams",
    "DEFAULT_PARAMS",
    "BatchPerf",
    "batch_perf",
    "estimate_ipc",
    "snuca_avg_rtt",
    "WorkloadSpec",
    "make_default_workload",
    "SystemModel",
    "RunResult",
    "EpochMetrics",
    "compute_deadline_cycles",
    "run_model",
    "run_design",
]
