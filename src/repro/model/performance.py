"""Analytic batch performance model.

Batch applications enter the evaluation through an additive CPI model:

    CPI = CPI_base
        + APKI/1000 * stall_frac * (bank_latency + avg NoC round-trip)
        + MPKI_eff/1000 * miss_penalty

where ``MPKI_eff`` inflates the profile's miss curve by the associativity
penalty when the app is way-partitioned with few ways per bank, and
``miss_penalty`` is the memory latency plus bank-to-controller NoC time,
deflated by memory-level parallelism. This captures the three effects
the paper's results hinge on: allocation size (miss curve), placement
proximity (NoC term), and partitioning mechanism (associativity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..config import SystemConfig
from ..core.allocation import Allocation
from ..noc.mesh import MeshNoc
from ..workloads.spec import BatchAppProfile
from .params import DEFAULT_PARAMS, ModelParams

__all__ = [
    "BatchPerf",
    "batch_perf",
    "estimate_ipc",
    "snuca_avg_rtt",
    "lc_service_cycles",
]


@dataclass(frozen=True)
class BatchPerf:
    """Per-app outputs of the batch model for one epoch."""

    app: str
    ipc: float
    size_mb: float
    mpki_eff: float
    noc_rtt: float
    ways_per_bank: float
    llc_apki: float

    @property
    def cpi(self) -> float:
        """Cycles per instruction (1 / IPC)."""
        return 1.0 / self.ipc


def snuca_avg_rtt(tile: int, noc: MeshNoc) -> float:
    """Average round-trip to data striped over every bank (S-NUCA)."""
    n = noc.config.num_banks
    return sum(noc.round_trip(tile, b) for b in range(n)) / n


def _miss_penalty(
    tile: int, noc: MeshNoc, config: SystemConfig, params: ModelParams
) -> float:
    """Effective stall per LLC miss: memory latency + NoC, over MLP."""
    mem_rtt = noc.mem_latency_from(tile)
    return (config.mem_latency + mem_rtt) / params.mlp


def batch_perf(
    app: str,
    profile: BatchAppProfile,
    tile: int,
    alloc: Allocation,
    noc: MeshNoc,
    params: ModelParams = DEFAULT_PARAMS,
) -> BatchPerf:
    """Evaluate one batch app's IPC under an allocation."""
    config = alloc.config
    size = alloc.app_size(app)
    noc_rtt = alloc.avg_noc_rtt(app, tile, noc)
    partitioned = (
        alloc.partition_mode in ("per-app", "per-vm")
        and app not in alloc.shared_batch
    )
    if partitioned:
        ways = alloc.ways_per_bank(app)
        penalty = params.assoc_penalty(ways, config.llc_bank_ways)
    else:
        ways = config.llc_bank_ways
        penalty = params.sharing_penalty
    mpki_eff = profile.mpki(size) * penalty
    llc_time = (
        profile.apki
        / 1000.0
        * params.llc_stall_fraction
        * (config.llc_bank_latency + noc_rtt)
    )
    mem_time = mpki_eff / 1000.0 * _miss_penalty(tile, noc, config, params)
    cpi = profile.cpi_base + llc_time + mem_time
    return BatchPerf(
        app=app,
        ipc=1.0 / cpi,
        size_mb=size,
        mpki_eff=mpki_eff,
        noc_rtt=noc_rtt,
        ways_per_bank=ways,
        llc_apki=profile.apki,
    )


def lc_service_cycles(
    profile,
    size_mb: float,
    noc_rtt: float,
    ways: float,
    config: SystemConfig,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """Mean LC per-request service time under the full model.

    Extends the profile's calibration-level service model with the
    associativity penalty of thin way-partitions. Used identically by
    the deadline computation (the paper's 4-way reference condition) and
    the epoch simulation, so "meeting the deadline" is self-consistent.
    """
    if size_mb < 0 or noc_rtt < 0:
        raise ValueError("size and noc_rtt must be non-negative")
    penalty = params.assoc_penalty(ways, config.llc_bank_ways)
    misses = profile.misses_per_query(size_mb) * penalty
    from ..workloads.tailbench import (
        BANK_LATENCY_CYCLES,
        MISS_PENALTY_CYCLES,
    )

    return (
        profile.base_cycles
        + profile.accesses_per_query * (BANK_LATENCY_CYCLES + noc_rtt)
        + misses * MISS_PENALTY_CYCLES
    )


def estimate_ipc(
    profile: BatchAppProfile,
    size_mb: float,
    noc_rtt: float,
    config: SystemConfig,
    params: ModelParams = DEFAULT_PARAMS,
    mem_noc_rtt: float = 16.0,
) -> float:
    """Standalone IPC estimate (no allocation object).

    Used to convert MPKI curves into misses-per-kilocycle curves for the
    placement algorithms (they need commensurable miss *rates*) and for
    quick what-if queries.
    """
    if size_mb < 0:
        raise ValueError("size must be non-negative")
    mpki = profile.mpki(size_mb)
    llc_time = (
        profile.apki
        / 1000.0
        * params.llc_stall_fraction
        * (config.llc_bank_latency + noc_rtt)
    )
    mem_time = mpki / 1000.0 * (
        (config.mem_latency + mem_noc_rtt) / params.mlp
    )
    return 1.0 / (profile.cpi_base + llc_time + mem_time)
