"""Cross-validation between the trace-driven and analytic layers.

The evaluation sweeps run on the analytic model (`repro.model`); the
microarchitectural experiments run on the trace-driven simulator
(`repro.sim.tracesim`). This module closes the loop between them:

* :func:`measure_umon_curve` — drive a synthetic trace through a UMON
  and return the measured miss curve, the way Jumanji's hardware
  profiles applications;
* :func:`umon_matches_trace` — check that the UMON-predicted miss rate
  at a given allocation matches what a real cache of that size observes
  on the same trace;
* :func:`placement_agreement` — run the same placement through the
  trace simulator and the analytic model and compare the ordering of
  per-app miss rates.

These checks are what justify using the analytic layer for the 40-mix
sweeps (DESIGN.md Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.misscurve import MissCurve
from ..cache.umon import Umon
from ..config import LINE_BYTES, SystemConfig
from ..runner import Cell, SweepRunner, register_cell_kind
from ..sim.tracesim import TraceSimulator
from ..vtb.vtb import DESCRIPTOR_ENTRIES, PlacementDescriptor
from ..workloads.traces import AddressTrace, trace_from_spec

__all__ = [
    "measure_umon_curve",
    "umon_matches_trace",
    "umon_validation_suite",
    "placement_agreement",
    "ValidationReport",
]


def measure_umon_curve(
    trace: AddressTrace,
    accesses: int,
    num_ways: int = 32,
    num_sets: int = 64,
    sample_period: int = 1,
) -> MissCurve:
    """Profile a trace with a UMON; returns the measured miss curve.

    The curve's unit is misses per ``accesses`` (scaled by sampling).
    ``step`` is one monitored way's worth of the modelled bank:
    ``num_sets * LINE_BYTES`` bytes.
    """
    if accesses < 1:
        raise ValueError("need at least one access")
    umon = Umon(
        num_ways=num_ways,
        num_sets=num_sets,
        sample_period=sample_period,
    )
    for _ in range(accesses):
        umon.access(trace.next_line())
    return umon.miss_curve()


def _simulate_fixed_cache(
    trace: AddressTrace,
    accesses: int,
    cache_lines: int,
    ways: int = 32,
) -> float:
    """Miss rate of a raw LRU cache of ``cache_lines`` on the stream.

    A bare :class:`CacheBank` sees the same unfiltered stream the UMON
    samples — the apples-to-apples comparison. (Inside the full
    hierarchy, L1/L2 absorb the hot head of the stream, so LLC-level
    miss rates are *not* comparable to a monitor of the raw stream.)
    """
    from ..cache.bank import CacheBank

    sets = max(1, cache_lines // ways)
    bank = CacheBank(
        num_sets=sets, num_ways=ways, latency=1, policy="lru"
    )
    misses = 0
    for i in range(accesses):
        if not bank.access(trace.next_line(), now=i).hit:
            misses += 1
    return misses / accesses


@dataclass
class ValidationReport:
    """Outcome of one UMON-vs-trace comparison."""

    umon_miss_fraction: float
    trace_miss_rate: float

    @property
    def absolute_error(self) -> float:
        """Absolute gap between predicted and measured miss rates."""
        return abs(self.umon_miss_fraction - self.trace_miss_rate)


def umon_matches_trace(
    make_trace,
    accesses: int = 30_000,
    allocation_ways: int = 16,
    num_sets: int = 64,
) -> ValidationReport:
    """Compare UMON-predicted and trace-measured miss rates.

    ``make_trace`` is a zero-argument factory returning *fresh,
    identically seeded* traces (the two measurements must see the same
    stream). The UMON predicts the miss fraction at
    ``allocation_ways`` monitored ways; a raw LRU cache of the same
    capacity measures the true miss rate on the same stream. Agreement
    validates the sampled monitor.
    """
    umon_curve = measure_umon_curve(
        make_trace(), accesses, num_ways=32, num_sets=num_sets
    )
    predicted = (
        umon_curve.misses_at(float(allocation_ways))
        / max(umon_curve.misses_at(0.0), 1e-12)
    )
    measured = _simulate_fixed_cache(
        make_trace(), accesses, allocation_ways * num_sets
    )
    return ValidationReport(
        umon_miss_fraction=predicted, trace_miss_rate=measured
    )


@register_cell_kind("umon_validation")
def _umon_validation_cell(
    trace_spec: Dict[str, object],
    accesses: int,
    allocation_ways: int,
    num_sets: int,
) -> Dict[str, float]:
    """One UMON-vs-trace comparison as a sweep cell.

    The trace arrives as a :func:`~repro.workloads.traces.trace_from_spec`
    spec so the cell's cache identity is plain JSON; the factory is
    rebuilt from it for each of the two measurements (they must see the
    same stream).
    """
    report = umon_matches_trace(
        lambda: trace_from_spec(trace_spec),
        accesses=accesses,
        allocation_ways=allocation_ways,
        num_sets=num_sets,
    )
    return {
        "umon_miss_fraction": report.umon_miss_fraction,
        "trace_miss_rate": report.trace_miss_rate,
    }


def umon_validation_suite(
    trace_specs: Sequence[Dict[str, object]],
    accesses: int = 30_000,
    allocation_ways: int = 16,
    num_sets: int = 64,
    jobs: Optional[int] = None,
) -> List[ValidationReport]:
    """Run :func:`umon_matches_trace` for many traces as parallel cells.

    Each spec is an independent simulation, so the suite shards over the
    sweep-runner pool and memoises in the content-addressed cache;
    results come back in spec order, identical to a serial run.
    """
    cells = [
        Cell(
            "umon_validation",
            {
                "trace_spec": spec,
                "accesses": accesses,
                "allocation_ways": allocation_ways,
                "num_sets": num_sets,
            },
        )
        for spec in trace_specs
    ]
    rows = SweepRunner(jobs=jobs).map(cells)
    return [ValidationReport(**row) for row in rows]


def placement_agreement(
    traces: Dict[str, AddressTrace],
    placements: Dict[str, Sequence[int]],
    accesses_per_core: int = 20_000,
    config: Optional[SystemConfig] = None,
) -> Dict[str, float]:
    """Run apps with given bank placements; return per-app miss rates.

    Used by tests to confirm the trace-driven layer reproduces the
    analytic layer's central monotonicity: more banks (capacity) mean
    lower miss rates, and placement controls which banks fill.
    """
    config = config if config is not None else SystemConfig()
    sim = TraceSimulator(config=config, bank_sets=64)
    for core, (app, trace) in enumerate(sorted(traces.items())):
        banks = list(placements[app])
        if not banks:
            raise ValueError(f"{app!r} needs at least one bank")
        entries = [
            banks[i % len(banks)] for i in range(DESCRIPTOR_ENTRIES)
        ]
        sim.add_core(
            core, trace, core, PlacementDescriptor(entries),
            partition=app,
        )
    sim.run(accesses_per_core)
    out = {}
    for core, (app, _trace) in enumerate(sorted(traces.items())):
        out[app] = sim.stats()[core].llc_miss_rate
    return out
