"""Frozen scalar reference for the epoch-level analytical engine.

This module preserves the scalar implementations of the epoch engine's
hot paths exactly as they existed before the vectorised fast path
replaced them in ``repro.sim.queueing`` and the ``repro.core`` placers.
It exists for two reasons (the same pattern as
:mod:`repro.sim.reference` for the trace simulator):

* **Equivalence testing.** The fast path must be bit-identical to this
  code: the same request latencies, the same allocation matrices, the
  same controller decisions. Property tests drive both implementations
  with the same seeds/contexts and compare every observable
  (``tests/test_model_reference.py``).
* **Benchmarking.** ``repro bench --suite model`` times the fast engine
  against this scalar baseline over the fig13 epoch loop and reports
  the speedup in ``BENCH_model.json``, gated on ``stats_identical``.

Two deliberate deviations from the historical code are part of the
engine change and documented in :mod:`repro.sim.queueing`:

* Variates come from buffered ``numpy.Generator`` streams (numpy draws
  are bitwise chunk-independent, so the scalar one-at-a-time
  consumption here sees the same values the fast path slices in bulk).
* Completion times follow the u-transform of the Lindley recurrence
  (``u = max(u, arrival - S); completion = u + S`` with ``S`` the
  running service-time sum), which both paths compute with the same
  IEEE operations in the same order. The golden fig12/fig13 pins were
  regenerated for the resulting new request streams.

A full scalar run is selected with ``SystemModel(..., engine=
"reference")``: contexts are built with ``engine="reference"`` (the
production placer entry points then delegate to the copies below),
LC queues use :class:`ReferenceLcRequestSimulator`, and placement
memoisation is disabled. Nothing here should be optimised:
slow-and-obvious is the point.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cache.misscurve import MissCurve
from ..config import CORE_FREQ_HZ
from ..core.allocation import Allocation
from ..core.context import PlacementContext
from ..noc.mesh import MeshNoc
from ..sim.queueing import LcRequestSimulator, QueueSimResult

__all__ = [
    "ReferenceLcRequestSimulator",
    "reference_combine_curves",
    "reference_lookahead",
    "reference_jumanji_lookahead",
    "reference_lat_crit_placer",
    "reference_place_sizes_near_tiles",
    "reference_jigsaw_place",
    "reference_vm_batch_curves",
    "reference_assign_banks_to_vms",
    "reference_jumanji_placer",
]


# ---------------------------------------------------------------------------
# Queueing: scalar FCFS epoch loop
# ---------------------------------------------------------------------------


class ReferenceLcRequestSimulator(LcRequestSimulator):
    """Scalar per-request epoch loop over the shared variate streams.

    Consumes the same buffered streams as the fast path, one variate at
    a time, and resolves the u-transform recurrence request by request.
    Differentially tested to produce bit-identical results.
    """

    def run_epoch(
        self,
        duration_cycles: float,
        mean_service_cycles: float,
        qps: Optional[float] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> QueueSimResult:
        if duration_cycles <= 0:
            raise ValueError("duration must be positive")
        if mean_service_cycles <= 0:
            raise ValueError("service time must be positive")
        if qps is not None:
            if qps <= 0:
                raise ValueError("qps must be positive")
            self.qps = qps
        epoch_end = self._now + duration_cycles

        # Arrivals: running sum of scaled unit exponentials from the
        # epoch's base arrival — the same left-to-right summation the
        # fast path computes with one cumsum.
        if self._next_arrival <= epoch_end:
            scale = CORE_FREQ_HZ / self.qps
            base = self._next_arrival
            offset = 0.0
            current = base
            while current <= epoch_end:
                if len(self._backlog) < self.max_backlog:
                    self._backlog.append(current)
                offset = offset + self._arrivals.next() * scale
                current = base + offset
            self._next_arrival = current

        # Serve FCFS via the u-transform: S is the running sum of
        # service times started this epoch, u the shifted start level.
        latencies: List[float] = []
        service_scale = mean_service_cycles * self.service_cv**2
        u = self._server_free_at
        cum = 0.0
        remaining: List[float] = []
        for arrival in self._backlog:
            candidate = arrival - cum
            if candidate > u:
                u = candidate
            start = u + cum
            if start >= epoch_end:
                remaining.append(arrival)
                continue
            if self._services is not None:
                service = self._services.next() * service_scale
            else:
                service = mean_service_cycles
            cum = cum + service
            completion = u + cum
            self._server_free_at = completion
            if completion > epoch_end:
                # Server stays busy with this request into the next
                # epoch; it is retried (fresh draw) next epoch.
                remaining.append(arrival)
                continue
            latency = completion - arrival
            latencies.append(latency)
            if on_complete is not None:
                on_complete(latency)
        self._backlog = remaining
        self._now = epoch_end

        utilization = self.qps * mean_service_cycles / CORE_FREQ_HZ
        return QueueSimResult(
            latencies_cycles=latencies,
            completed=len(latencies),
            mean_service_cycles=mean_service_cycles,
            utilization=utilization,
            final_queue_depth=len(self._backlog),
        )


# ---------------------------------------------------------------------------
# NoC helpers: per-call sorted()/min() as the scalar placers used
# ---------------------------------------------------------------------------


def _banks_by_distance(noc: MeshNoc, tile: int) -> List[int]:
    n = noc.config.num_banks
    return sorted(range(n), key=lambda b: (noc.hops(tile, b), b))


# ---------------------------------------------------------------------------
# Capacity division: Lookahead with the scalar tie-break loops
# ---------------------------------------------------------------------------


def _best_step_scalar(
    curve: MissCurve, current: float, budget: float, step: float
) -> Tuple[float, float]:
    max_steps = int(budget / step + 1e-9)
    best_util = -1.0
    best_delta = 0.0
    if max_steps < 1:
        return best_util, best_delta
    base = curve.misses_at(current)
    deltas = np.arange(1, max_steps + 1, dtype=float) * step
    utils = (base - curve.misses_at_many(current + deltas)) / deltas
    for k, util in enumerate(utils.tolist()):
        if util > best_util + 1e-15:
            best_util = util
            best_delta = float(deltas[k])
    return best_util, best_delta


def reference_lookahead(
    curves: Mapping[str, MissCurve],
    capacity: float,
    step: float,
    minimums: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """UCP Lookahead with the scalar per-candidate tie-break loop."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if step <= 0:
        raise ValueError("step must be positive")
    if not curves:
        raise ValueError("need at least one curve")
    sizes: Dict[str, float] = {a: 0.0 for a in curves}
    if minimums:
        for app, floor in minimums.items():
            if app not in sizes:
                raise ValueError(f"minimum for unknown app {app!r}")
            if floor < 0:
                raise ValueError("minimum must be non-negative")
            sizes[app] = floor
    remaining = capacity - sum(sizes.values())
    if remaining < -1e-9:
        raise ValueError("minimums exceed capacity")

    while remaining >= step - 1e-12:
        best_app = None
        best_util = -1.0
        best_delta = 0.0
        for app, curve in curves.items():
            util, delta = _best_step_scalar(
                curve, sizes[app], remaining, step
            )
            if delta > 0 and util > best_util + 1e-15:
                best_util = util
                best_app = app
                best_delta = delta
        if best_app is None:
            break
        if best_util <= 0:
            share = remaining / len(sizes)
            for app in sizes:
                sizes[app] += share
            remaining = 0.0
            break
        sizes[best_app] += best_delta
        remaining -= best_delta
    if remaining > 1e-12 and sizes:
        steepest = max(
            curves,
            key=lambda a: curves[a].marginal_utility(sizes[a], step),
        )
        sizes[steepest] += remaining
    return sizes


def reference_jumanji_lookahead(
    vm_curves: Mapping[int, MissCurve],
    lat_allocs: Mapping[int, float],
    num_banks: int,
    bank_mb: float,
) -> Dict[int, float]:
    """Bank-granular lookahead with the scalar tie-break loop."""
    if num_banks < 1:
        raise ValueError("need at least one bank")
    if bank_mb <= 0:
        raise ValueError("bank size must be positive")
    vms = sorted(vm_curves)
    if sorted(lat_allocs) != vms and any(
        vm not in vm_curves for vm in lat_allocs
    ):
        raise ValueError("lat_allocs refers to unknown VMs")
    min_banks: Dict[int, int] = {}
    for vm in vms:
        lat = lat_allocs.get(vm, 0.0)
        if lat < 0:
            raise ValueError("negative LC reservation")
        min_banks[vm] = max(1, math.ceil(lat / bank_mb - 1e-9))
    total_min = sum(min_banks.values())
    if total_min > num_banks:
        raise ValueError(
            f"LC reservations need {total_min} banks; only {num_banks}"
        )

    banks_of: Dict[int, int] = dict(min_banks)
    remaining = num_banks - total_min

    def batch_mb(vm: int, banks: int) -> float:
        return banks * bank_mb - lat_allocs.get(vm, 0.0)

    while remaining > 0:
        best_vm = None
        best_util = -1.0
        best_banks = 0
        deltas = np.arange(1, remaining + 1, dtype=float) * bank_mb
        for vm in vms:
            cur = batch_mb(vm, banks_of[vm])
            curve = vm_curves[vm]
            base = curve.misses_at(cur)
            utils = (base - curve.misses_at_many(cur + deltas)) / deltas
            for k, util in enumerate(utils.tolist(), start=1):
                if util > best_util + 1e-15:
                    best_util = util
                    best_vm = vm
                    best_banks = k
        if best_vm is None or best_util <= 0:
            i = 0
            while remaining > 0:
                banks_of[vms[i % len(vms)]] += 1
                remaining -= 1
                i += 1
            break
        banks_of[best_vm] += best_banks
        remaining -= best_banks

    return {vm: batch_mb(vm, banks_of[vm]) for vm in vms}


# ---------------------------------------------------------------------------
# Curve combination: greedy sweep with the scalar inner loops
# ---------------------------------------------------------------------------


def reference_combine_curves(curves: Sequence[MissCurve]) -> MissCurve:
    """Whirlpool-style combination, scalar and uncached."""
    curve_list = list(curves)
    if not curve_list:
        raise ValueError("need at least one curve")
    step = curve_list[0].step
    if any(c.step != step for c in curve_list):
        raise ValueError("all curves must share the same step")
    num_points = max(c.num_points for c in curve_list)

    n_apps = len(curve_list)
    allocs = [0.0] * n_apps
    combined = np.empty(num_points, dtype=float)
    combined[0] = sum(c.misses_at(0.0) for c in curve_list)
    granted = 0
    while granted < num_points - 1:
        remaining = num_points - 1 - granted
        best_app = -1
        best_util = -1.0
        best_k = 1
        deltas = np.arange(1, remaining + 1, dtype=float) * step
        for i, curve in enumerate(curve_list):
            base = curve.misses_at(allocs[i])
            utils = (
                base - curve.misses_at_many(allocs[i] + deltas)
            ) / deltas
            for k, util in enumerate(utils.tolist(), start=1):
                if util > best_util + 1e-15:
                    best_util = util
                    best_app = i
                    best_k = k
        if best_app < 0 or best_util <= 0:
            combined[granted + 1 :] = combined[granted]
            break
        for _ in range(best_k):
            allocs[best_app] += step
            granted += 1
            combined[granted] = sum(
                c.misses_at(a) for c, a in zip(curve_list, allocs)
            )
    return MissCurve(combined, step)


# ---------------------------------------------------------------------------
# Placers: scalar loops over sorted()/min() bank orderings
# ---------------------------------------------------------------------------


def reference_lat_crit_placer(
    ctx: PlacementContext,
    allocation: Optional[Allocation] = None,
    bank_affinity: Optional[Mapping[str, int]] = None,
    isolate_vms: bool = False,
) -> Allocation:
    """Greedy closest-bank LC placement (paper Listing 2), scalar."""
    alloc = allocation if allocation is not None else Allocation(
        ctx.config, partition_mode="per-app"
    )
    bank_vm: dict = {}
    if isolate_vms:
        for bank in range(ctx.config.num_banks):
            for resident in alloc.apps_in_bank(bank):
                bank_vm[bank] = ctx.vm_of(resident)
    for app in ctx.lc_apps:
        target = ctx.lat_size(app)
        if target <= 0:
            continue
        if target > ctx.config.llc_size_mb:
            raise ValueError(
                f"{app}: target {target} MB exceeds LLC capacity"
            )
        tile = (
            bank_affinity[app]
            if bank_affinity is not None and app in bank_affinity
            else ctx.tile_of(app)
        )
        vm_id = ctx.vm_of(app)
        preferred = _banks_by_distance(ctx.noc, tile)
        remaining = target
        for bank in preferred:
            if remaining <= 1e-12:
                break
            if isolate_vms and bank_vm.get(bank, vm_id) != vm_id:
                continue
            grab = min(alloc.bank_free(bank), remaining)
            if grab > 0:
                alloc.add(bank, app, grab)
                remaining -= grab
                if isolate_vms:
                    bank_vm[bank] = vm_id
        if remaining > 1e-9:
            raise ValueError(
                f"could not place {remaining:.3f} MB for {app}: LLC full"
            )
    return alloc


def reference_place_sizes_near_tiles(
    sizes: Mapping[str, float],
    tiles: Mapping[str, int],
    ctx: PlacementContext,
    allocation: Allocation,
    allowed_banks: Optional[Sequence[int]] = None,
) -> Allocation:
    """Round-robin proximity placement, rescanning banks each round."""
    chunk = ctx.config.llc_bank_mb * 0.25
    remaining: Dict[str, float] = {
        a: s for a, s in sizes.items() if s > 0
    }
    bank_filter = (
        set(allowed_banks) if allowed_banks is not None else None
    )
    preferred: Dict[str, List[int]] = {}
    for app in remaining:
        banks = _banks_by_distance(ctx.noc, tiles[app])
        if bank_filter is not None:
            banks = [b for b in banks if b in bank_filter]
        if not banks:
            raise ValueError(f"no allowed banks for {app!r}")
        preferred[app] = banks

    total_remaining = sum(remaining.values())
    capacity = sum(
        allocation.bank_free(b)
        for b in (
            bank_filter
            if bank_filter is not None
            else range(ctx.config.num_banks)
        )
    )
    if total_remaining > capacity + 1e-6:
        raise ValueError(
            f"cannot place {total_remaining:.3f} MB into "
            f"{capacity:.3f} MB of free space"
        )

    while remaining:
        placed_any = False
        for app in sorted(
            remaining, key=lambda a: (-remaining[a], a)
        ):
            want = min(chunk, remaining[app])
            for bank in preferred[app]:
                free = allocation.bank_free(bank)
                if free <= 1e-12:
                    continue
                grab = min(free, want)
                allocation.add(bank, app, grab)
                remaining[app] -= grab
                placed_any = True
                break
            if remaining[app] <= 1e-9:
                del remaining[app]
        if not placed_any and remaining:
            raise ValueError(
                "placement stalled with "
                f"{sum(remaining.values()):.3f} MB unplaced"
            )
    return allocation


def reference_jigsaw_place(
    ctx: PlacementContext,
    apps: Optional[Sequence[str]] = None,
    allowed_banks: Optional[Sequence[int]] = None,
    allocation: Optional[Allocation] = None,
    capacity_mb: Optional[float] = None,
    step_mb: float = 0.125,
) -> Allocation:
    """Jigsaw (capacity division + proximity placement), scalar."""
    app_names = list(apps) if apps is not None else sorted(ctx.apps)
    if not app_names:
        return allocation if allocation is not None else Allocation(
            ctx.config, partition_mode="per-app"
        )
    alloc = allocation if allocation is not None else Allocation(
        ctx.config, partition_mode="per-app"
    )
    banks = (
        list(allowed_banks)
        if allowed_banks is not None
        else list(range(ctx.config.num_banks))
    )
    if capacity_mb is None:
        capacity_mb = sum(alloc.bank_free(b) for b in banks)
    if capacity_mb < -1e-9:
        raise ValueError("negative capacity")

    curves = {a: ctx.apps[a].curve for a in app_names}
    sizes = reference_lookahead(curves, capacity_mb, step_mb)
    tiles = {a: ctx.apps[a].tile for a in app_names}
    return reference_place_sizes_near_tiles(
        sizes, tiles, ctx, alloc, allowed_banks=banks
    )


def reference_vm_batch_curves(
    ctx: PlacementContext,
) -> Dict[int, MissCurve]:
    """Per-VM combined batch curves, recombined from scratch."""
    curves: Dict[int, MissCurve] = {}
    sample = next(iter(ctx.apps.values())).curve
    for vm in ctx.vms:
        batch = [ctx.apps[a].curve for a in vm.batch_apps]
        if batch:
            curves[vm.vm_id] = reference_combine_curves(batch)
        else:
            curves[vm.vm_id] = MissCurve.flat(
                0.0, sample.num_points, sample.step
            )
    return curves


def reference_assign_banks_to_vms(
    ctx: PlacementContext,
    alloc: Allocation,
    banks_needed: Mapping[int, int],
) -> Dict[int, List[int]]:
    """Round-robin whole-bank assignment with per-pick min() scans."""
    owner: Dict[int, int] = {}
    for bank in range(ctx.config.num_banks):
        apps_here = alloc.apps_in_bank(bank)
        vms_here = {ctx.vm_of(a) for a in apps_here}
        if len(vms_here) > 1:
            raise ValueError(
                f"LC placement put {sorted(vms_here)} in bank {bank}; "
                "isolation impossible"
            )
        if vms_here:
            owner[bank] = next(iter(vms_here))

    banks_of: Dict[int, List[int]] = {
        vm.vm_id: [] for vm in ctx.vms
    }
    for bank, vm_id in owner.items():
        banks_of[vm_id].append(bank)

    free = [b for b in range(ctx.config.num_banks) if b not in owner]
    order = sorted(banks_of, key=lambda v: v)
    while free:
        progressed = False
        for vm_id in order:
            if len(banks_of[vm_id]) >= banks_needed.get(vm_id, 0):
                continue
            if not free:
                break
            centroid = ctx.vm_centroid(ctx.vm_by_id(vm_id))
            pick = min(
                free, key=lambda b: (ctx.noc.hops(centroid, b), b)
            )
            free.remove(pick)
            banks_of[vm_id].append(pick)
            progressed = True
        if not progressed:
            for i, bank in enumerate(sorted(free)):
                banks_of[order[i % len(order)]].append(bank)
            free = []
    return banks_of


def reference_jumanji_placer(
    ctx: PlacementContext,
    step_mb: float = 0.125,
    enforce_isolation: bool = True,
) -> Allocation:
    """The JumanjiPlacer (paper Listing 3), fully scalar."""
    alloc = reference_lat_crit_placer(ctx, isolate_vms=enforce_isolation)

    if not enforce_isolation:
        batch = ctx.batch_apps
        if batch:
            reference_jigsaw_place(
                ctx, apps=batch, allocation=alloc, step_mb=step_mb
            )
        return alloc

    lat_allocs = {
        vm.vm_id: sum(ctx.lat_size(a) for a in vm.lc_apps)
        for vm in ctx.vms
    }
    curves = reference_vm_batch_curves(ctx)
    batch_mb = reference_jumanji_lookahead(
        curves,
        lat_allocs,
        num_banks=ctx.config.num_banks,
        bank_mb=ctx.config.llc_bank_mb,
    )
    banks_needed = {
        vm_id: int(
            round(
                (batch_mb[vm_id] + lat_allocs.get(vm_id, 0.0))
                / ctx.config.llc_bank_mb
            )
        )
        for vm_id in batch_mb
    }
    banks_of = reference_assign_banks_to_vms(ctx, alloc, banks_needed)

    for vm in ctx.vms:
        banks = banks_of[vm.vm_id]
        if not vm.batch_apps or not banks:
            continue
        capacity = sum(alloc.bank_free(b) for b in banks)
        reference_jigsaw_place(
            ctx,
            apps=list(vm.batch_apps),
            allowed_banks=banks,
            allocation=alloc,
            capacity_mb=capacity,
            step_mb=step_mb,
        )
    violations = alloc.violates_bank_isolation(ctx.vm_of_app_map())
    if violations:
        raise AssertionError(
            f"bank isolation violated in banks {violations}"
        )
    return alloc
