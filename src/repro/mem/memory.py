"""Main-memory model: fixed-latency controllers with bandwidth partitioning.

The paper's methodology (Sec. VII) models memory as four controllers at
the chip corners with 120-cycle fixed latency and bandwidth partitioning
"with fixed latency [28, 51]". We model each controller as a server pool
whose effective per-request latency grows once a tenant exceeds its
bandwidth share, which is the behaviour bandwidth partitioning exposes to
software.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import SystemConfig

__all__ = ["MemoryController", "MemorySystem"]


@dataclass
class MemoryController:
    """One memory controller with a bandwidth quota per tenant.

    ``peak_requests_per_kcycle`` is the controller's service capacity;
    tenants receive ``share`` fractions of it (default: equal shares).
    :meth:`effective_latency` inflates the base latency by an M/M/1-style
    utilisation factor so overload degrades gracefully rather than
    cliff-edge, matching the fixed-latency-plus-partitioning abstraction.
    """

    tile: int
    base_latency: int = 120
    peak_requests_per_kcycle: float = 64.0
    shares: Dict[object, float] = field(default_factory=dict)

    def set_share(self, tenant: object, share: float) -> None:
        """Assign a tenant's bandwidth share in (0, 1]."""
        if share <= 0 or share > 1:
            raise ValueError("share must be in (0, 1]")
        self.shares[tenant] = share

    def effective_latency(
        self, tenant: object, demand_per_kcycle: float
    ) -> float:
        """Latency seen by ``tenant`` issuing ``demand`` requests/kcycle."""
        if demand_per_kcycle < 0:
            raise ValueError("demand must be non-negative")
        share = self.shares.get(tenant, 1.0 / max(1, len(self.shares) or 1))
        capacity = self.peak_requests_per_kcycle * share
        if capacity <= 0:
            raise ValueError("tenant has zero capacity")
        utilization = min(demand_per_kcycle / capacity, 0.95)
        return self.base_latency / (1.0 - utilization)


class MemorySystem:
    """The chip's memory controllers (at mesh corners, per Table II)."""

    def __init__(self, config: SystemConfig):
        self.config = config
        last = config.num_cores - 1
        corner_tiles = (
            0,
            config.mesh_cols - 1,
            last - (config.mesh_cols - 1),
            last,
        )[: config.num_mem_ctrls]
        self.controllers = [
            MemoryController(tile=t, base_latency=config.mem_latency)
            for t in corner_tiles
        ]

    def controller_for(self, tile: int) -> MemoryController:
        """Controller nearest to ``tile`` (line-interleaving averages out
        in steady state, so nearest-controller is the model's choice)."""
        col, row = self.config.tile_coords(tile)

        def dist(ctrl: MemoryController) -> int:
            c, r = self.config.tile_coords(ctrl.tile)
            return abs(c - col) + abs(r - row)

        return min(self.controllers, key=dist)

    def set_equal_shares(self, tenants) -> None:
        """Give every tenant an equal bandwidth share at each controller."""
        tenants = list(tenants)
        if not tenants:
            return
        share = 1.0 / len(tenants)
        for ctrl in self.controllers:
            for tenant in tenants:
                ctrl.set_share(tenant, share)
