"""Main-memory substrate."""

from .memory import MemoryController, MemorySystem

__all__ = ["MemoryController", "MemorySystem"]
