"""``repro bench``: timed sweep benchmarking with a machine-readable report.

Seven suites:

* ``--suite sweeps`` (default) runs the sweep-backed figures
  (Fig. 13-18) through the parallel runner and writes
  ``BENCH_sweeps.json`` recording, per figure: wall-clock seconds,
  cells computed vs. served from the result cache, the estimated serial
  cost (sum of per-cell compute durations), and the resulting speedup
  vs. that serial baseline. The serial estimate comes from the
  durations the cache records for every cell, so warm runs still report
  an honest speedup without re-running the sweep serially.

* ``--suite tracesim`` benchmarks the array-backed trace-simulator fast
  path (``repro.sim.tracesim``) against the frozen scalar reference
  (``repro.sim.reference``) on byte-identical replayed streams, checks
  the aggregate :class:`~repro.sim.tracesim.TraceStats` are
  bit-identical, shards per-seed trace runs over the runner pool
  (capped at 4 workers unless a job count is pinned — the cells are too
  small to amortise a bigger pool), and writes ``BENCH_tracesim.json``.
  ``--profile`` additionally dumps cProfile stats for one closed-loop
  simulated epoch.

* ``--suite model`` benchmarks the vectorised epoch engine against the
  frozen scalar reference (``repro.model.reference``) on the Fig. 13
  epoch loop: every (design, batch-mix) cell is run end-to-end through
  :class:`~repro.model.system.SystemModel` under both engines with the
  same seeds, the two :class:`~repro.model.system.RunResult` objects
  are required to be bit-identical (``stats_identical``), and the
  report records per-design and overall speedups plus placement-memo
  hit counts. Exits non-zero if any cell diverges or the deadline memo
  is unbounded. Writes ``BENCH_model.json``.

* ``--suite faults`` is the chaos smoke: it runs one mini-sweep twice
  on throwaway cache directories — once clean, once under a seeded
  :class:`~repro.faults.FaultPlan` injecting worker crashes, handler
  errors, and corrupt cache entries — and checks the outcomes are
  bit-identical (fault tolerance must never change results, only cost).
  It then re-runs over the now-dirty cache (quarantine + recompute
  path) and finishes with a degraded-runtime drill verifying the
  no-shared-banks security invariant holds through NaN/negative/dropped
  telemetry and injected placer failures. Writes ``BENCH_faults.json``
  and exits non-zero if any invariant breaks, so ``make check-faults``
  can gate on it.

* ``--suite obs`` gates the observability subsystem (``repro.obs``):
  disabled-mode instrumentation overhead on the Fig. 13 epoch loop must
  stay within :data:`OBS_OVERHEAD_GATE` of a fully stubbed run, an
  enabled run must cover every span in :data:`OBS_REQUIRED_SPANS` with
  a loadable trace, and two same-seed enabled runs must produce
  identical metric snapshots. Writes ``BENCH_obs.json`` and exits
  non-zero on any gate failure, so ``make bench-obs`` can gate on it.

* ``--suite fleet`` gates the rack-scale layer (``repro.fleet``): one
  seeded scenario (churn + flash crowds + rack-correlated failures) is
  run twice end to end; the two canonical results must serialise
  byte-identically (same-seed determinism), no conservation/capacity/
  isolation invariant may break in either run, and the report records
  chip-epochs/s throughput. Writes ``BENCH_fleet.json`` and exits
  non-zero on any gate failure, so ``make bench-fleet`` can gate on it.

* ``--suite serve`` gates the placement service (``repro.serve``): an
  in-process daemon is driven twice by the same seeded synthetic-tenant
  load (``N`` tenants x ``M`` telemetry posts each); both runs must
  finish with zero errors and zero invariant violations, the decision
  sequences must be byte-identical (same-seed determinism), and the
  report records decisions/s and client-observed p95 decision latency.
  Writes ``BENCH_serve.json`` and exits non-zero on any gate failure,
  so ``make bench-serve`` can gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import __version__
from .config import Settings
from .runner import (
    ResultCache,
    collecting_stats,
    code_fingerprint,
    resolve_jobs,
)

__all__ = [
    "BENCH_FIGURES",
    "OBS_OVERHEAD_GATE",
    "OBS_REQUIRED_SPANS",
    "run_bench",
    "run_tracesim_bench",
    "run_model_bench",
    "run_faults_bench",
    "run_obs_bench",
    "run_fleet_bench",
    "run_serve_bench",
    "add_bench_arguments",
    "cmd_bench",
]


def _fig13(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig13

    fig13.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig14(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig14

    fig14.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig15(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig15

    fig15.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig16(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig16

    fig16.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig17(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig17

    fig17.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig18(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig18

    fig18.run(mixes=mixes, epochs=epochs, jobs=jobs)


#: The sweep-backed figures ``repro bench`` can time.
BENCH_FIGURES: Dict[str, Callable[..., None]] = {
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "fig18": _fig18,
}


def run_bench(
    figures: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    mixes: Optional[int] = None,
    epochs: Optional[int] = None,
    cold: bool = False,
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """Benchmark the requested figures; returns (and writes) the report.

    With ``cold=True`` the result cache is cleared first, so every cell
    is recomputed. ``output`` defaults to ``BENCH_sweeps.json`` in the
    current directory; pass ``output=""``/None-like falsy to skip
    writing.
    """
    figures = list(figures) if figures else list(BENCH_FIGURES)
    unknown = [f for f in figures if f not in BENCH_FIGURES]
    if unknown:
        raise ValueError(
            f"unknown figures {unknown}; choose from "
            f"{sorted(BENCH_FIGURES)}"
        )
    jobs_resolved = resolve_jobs(jobs)
    cache = ResultCache()
    if cold:
        cache.clear()
    report: Dict[str, Any] = {
        "version": __version__,
        "code_fingerprint": code_fingerprint(),
        "jobs": jobs_resolved,
        "mixes": mixes,
        "epochs": epochs,
        "cold": cold,
        "cache_dir": str(cache.directory),
        "figures": {},
    }
    for name in figures:
        with collecting_stats() as stats:
            start = time.perf_counter()
            BENCH_FIGURES[name](mixes=mixes, epochs=epochs, jobs=jobs)
            wall = time.perf_counter() - start
        entry = stats.as_dict()
        # Figure wall-clock includes aggregation outside the runner.
        entry["wall_seconds"] = wall
        entry["speedup_vs_serial"] = (
            entry["serial_seconds_estimate"] / wall
            if wall > 0
            else float("inf")
        )
        report["figures"][name] = entry
    totals = {
        "cells": sum(
            f["cells"] for f in report["figures"].values()
        ),
        "computed": sum(
            f["computed"] for f in report["figures"].values()
        ),
        "cache_hits": sum(
            f["cache_hits"] for f in report["figures"].values()
        ),
        "wall_seconds": sum(
            f["wall_seconds"] for f in report["figures"].values()
        ),
        "serial_seconds_estimate": sum(
            f["serial_seconds_estimate"]
            for f in report["figures"].values()
        ),
    }
    totals["cache_hit_rate"] = (
        totals["cache_hits"] / totals["cells"] if totals["cells"] else 0.0
    )
    totals["speedup_vs_serial"] = (
        totals["serial_seconds_estimate"] / totals["wall_seconds"]
        if totals["wall_seconds"] > 0
        else float("inf")
    )
    report["total"] = totals
    if output is None:
        output = "BENCH_sweeps.json"
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


# --------------------------------------------------------------------------
# tracesim suite
# --------------------------------------------------------------------------


def _tracesim_streams(
    accesses: int, config, seed: int = 0
) -> List[List[int]]:
    """Materialised per-core access streams for the benchmark workload.

    One third each of Zipf reuse, uniform working-set reuse, and
    streaming scans — miss-heavy enough that the LLC banks do real
    eviction/partition work. Generated once so the fast path and the
    scalar reference replay byte-identical streams and the measurement
    excludes trace-generation cost.
    """
    from .workloads.traces import (
        StreamingTrace,
        WorkingSetTrace,
        ZipfTrace,
    )

    streams = []
    for core in range(config.num_cores):
        if core % 3 == 0:
            trace = ZipfTrace(
                40_000, alpha=0.9, seed=seed * 1000 + core,
                base_line=core << 32,
            )
        elif core % 3 == 1:
            trace = WorkingSetTrace(
                30_000, seed=seed * 1000 + core, base_line=core << 32
            )
        else:
            trace = StreamingTrace(50_000, base_line=core << 32)
        streams.append(trace.lines(accesses))
    return streams


def _replay_sim(sim_cls, streams: List[List[int]], config):
    """A simulator instance with every core replaying its stream."""
    from .vtb.vtb import descriptor_from_allocation
    from .workloads.traces import ReplayTrace

    sim = sim_cls(config)
    for core, stream in enumerate(streams):
        group = (core % 4) * 5
        alloc = {bank: 1.0 for bank in range(group, group + 5)}
        sim.add_core(
            core,
            ReplayTrace(stream),
            vc_id=core,
            descriptor=descriptor_from_allocation(alloc),
        )
    return sim


def _timed_run(sim, accesses: int) -> Tuple[float, Dict]:
    start = time.perf_counter()
    sim.run(accesses)
    return time.perf_counter() - start, sim.stats()


def _profile_epoch(
    path: pathlib.Path, accesses_per_core: int
) -> Dict[str, Any]:
    """cProfile one closed-loop epoch; dump pstats to ``path``."""
    import cProfile
    import pstats

    from .core.designs import make_design
    from .sim.epochsim import ClosedLoopSimulation, TraceApp
    from .workloads.traces import WorkingSetTrace, ZipfTrace

    apps = []
    corners = [(0, 1), (4, 3), (15, 16), (19, 18)]
    for vm, (lc_core, batch_core) in enumerate(corners):
        apps.append(
            TraceApp(
                f"lc{vm}", lc_core, vm,
                ZipfTrace(3000, alpha=1.0, seed=vm), is_lc=True,
            )
        )
        apps.append(
            TraceApp(
                f"b{vm}", batch_core, vm,
                WorkingSetTrace(
                    5000, seed=100 + vm, base_line=10**7 * (vm + 1)
                ),
            )
        )
    sim = ClosedLoopSimulation(
        make_design("Jumanji"), apps,
        lat_sizes={f"lc{v}": 0.2 for v in range(4)},
    )
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run_epoch(accesses_per_core=accesses_per_core)
    profiler.disable()
    profiler.dump_stats(str(path))
    stats = pstats.Stats(profiler)
    return {
        "path": str(path),
        "total_calls": int(stats.total_calls),
        "total_seconds": float(stats.total_tt),
    }


def run_tracesim_bench(
    accesses: int = 20_000,
    seeds: int = 4,
    jobs: Optional[int] = None,
    cold: bool = False,
    profile: bool = False,
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """Benchmark the trace-simulator fast path; write the report.

    ``accesses`` is the per-core round count of the timed comparison
    (and of each sharded run); ``seeds`` is how many independent
    ``tracesim_run`` cells are fanned over the runner pool. With
    ``cold=True`` the result cache is cleared first. ``output`` defaults
    to ``BENCH_tracesim.json`` in the current directory.
    """
    from .config import SystemConfig
    from .sim.reference import ReferenceTraceSimulator
    from .sim.shard import shard_tracesim_runs
    from .sim.tracesim import TraceSimulator

    if accesses < 1:
        raise ValueError("need at least one access per core")
    if seeds < 1:
        raise ValueError("need at least one sharded seed run")
    jobs_resolved = resolve_jobs(jobs)
    # The sharded phase runs only a handful of small cells; spreading
    # them over a huge default pool pays more in worker spin-up than the
    # parallelism returns (and on busy many-core boxes the measured
    # "speedup" drops below 1x). Unless the caller pinned a job count
    # (arg or REPRO_JOBS), cap the shard pool at 4 workers and record
    # the pool size actually used in the report.
    if jobs is None and Settings.from_env().jobs is None:
        shard_jobs = min(4, os.cpu_count() or 1)
    else:
        shard_jobs = jobs_resolved
    cache = ResultCache()
    if cold:
        cache.clear()
    config = SystemConfig()
    streams = _tracesim_streams(accesses, config)
    total = accesses * config.num_cores

    fast_wall, fast_stats = _timed_run(
        _replay_sim(TraceSimulator, streams, config), accesses
    )
    ref_wall, ref_stats = _timed_run(
        _replay_sim(ReferenceTraceSimulator, streams, config), accesses
    )

    # Sharded per-seed runs through the pool + content-addressed cache.
    run_specs = [
        {
            "cores": [
                {
                    "core_id": core,
                    "trace": {
                        "kind": "zipf",
                        "num_lines": 20_000,
                        "alpha": 0.9,
                        "seed": seed * 1000 + core,
                        "base_line": core << 32,
                    },
                    "banks": [
                        (core % 4) * 5 + off for off in range(5)
                    ],
                    "partition": f"app{core}",
                }
                for core in range(config.num_cores)
            ],
            "rounds": accesses,
            "bank_sets": 64,
        }
        for seed in range(seeds)
    ]
    shard_start = time.perf_counter()
    _, runner = shard_tracesim_runs(run_specs, jobs=shard_jobs)
    shard_wall = time.perf_counter() - shard_start

    report: Dict[str, Any] = {
        "version": __version__,
        "suite": "tracesim",
        "code_fingerprint": code_fingerprint(),
        "jobs": jobs_resolved,
        "cold": cold,
        "cache_dir": str(cache.directory),
        "workload": {
            "cores": config.num_cores,
            "accesses_per_core": accesses,
            "total_accesses": total,
        },
        "scalar_reference": {
            "wall_seconds": ref_wall,
            "accesses_per_sec": total / ref_wall,
        },
        "fast_path": {
            "wall_seconds": fast_wall,
            "accesses_per_sec": total / fast_wall,
        },
        "speedup_vs_scalar": ref_wall / fast_wall,
        "stats_identical": fast_stats == ref_stats,
        "sharded_runs": dict(
            runner.stats.as_dict(),
            seeds=seeds,
            pool_jobs=shard_jobs,
            wall_seconds=shard_wall,
        ),
        "profile": None,
    }
    if output is None:
        output = "BENCH_tracesim.json"
    path = pathlib.Path(output)
    if profile:
        report["profile"] = _profile_epoch(
            path.with_suffix(".prof"), min(accesses, 5000)
        )
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


def cmd_tracesim_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench --suite tracesim``."""
    output = args.output
    if output == "BENCH_sweeps.json":
        # Default output name follows the suite.
        output = "BENCH_tracesim.json"
    report = run_tracesim_bench(
        accesses=args.accesses,
        seeds=args.seeds,
        jobs=args.jobs,
        cold=args.cold,
        profile=args.profile,
        output=output,
    )
    ref = report["scalar_reference"]
    fast = report["fast_path"]
    shards = report["sharded_runs"]
    print(
        f"tracesim: {report['workload']['total_accesses']:,} accesses "
        f"x {report['workload']['cores']} cores, jobs={report['jobs']}"
    )
    print(
        f"  scalar reference: {ref['accesses_per_sec']:,.0f} acc/s "
        f"({ref['wall_seconds']:.2f}s)"
    )
    print(
        f"  fast path:        {fast['accesses_per_sec']:,.0f} acc/s "
        f"({fast['wall_seconds']:.2f}s)"
    )
    print(
        f"  speedup {report['speedup_vs_scalar']:.2f}x, stats "
        f"identical: {report['stats_identical']}"
    )
    print(
        f"  sharded runs: {shards['computed']} computed + "
        f"{shards['cache_hits']} cached cells in "
        f"{shards['wall_seconds']:.2f}s "
        f"(pool of {shards['pool_jobs']})"
    )
    if report["profile"]:
        print(f"  profile: {report['profile']['path']}")
    print(f"wrote {report['output']}")
    return 0


# --------------------------------------------------------------------------
# model suite (vectorised epoch engine vs scalar reference)
# --------------------------------------------------------------------------


def _canonical_run_result(result) -> Tuple:
    """A :class:`~repro.model.system.RunResult` as plain comparable data.

    Covers every per-epoch observable (tails, sizes, IPCs,
    vulnerability, the full energy breakdown) and every post-warmup
    latency sample, so ``==`` between two canonical forms means the two
    engines agreed bit-for-bit.
    """
    return (
        result.design,
        result.load,
        result.warmup_epochs,
        tuple(sorted(result.lc_deadlines.items())),
        tuple(
            (app, tuple(lats))
            for app, lats in sorted(result.lc_all_latencies.items())
        ),
        tuple(
            (
                e.epoch,
                tuple(sorted(e.lc_tails.items())),
                tuple(sorted(e.lc_sizes.items())),
                tuple(sorted(e.batch_ipcs.items())),
                e.vulnerability,
                tuple(sorted(vars(e.energy).items())),
            )
            for e in result.epochs
        ),
    )


#: Per-design speedup floors (batched engine vs scalar reference),
#: enforced when the bench runs at or above :data:`MODEL_FLOOR_MIXES`
#: mixes — an Adaptive-speedup regression fails the bench. Below that
#: scale (CI smoke at 1-2 mixes, where fixed per-run overheads dominate
#: and timings are noisy) only :data:`MODEL_SMOKE_FLOOR` applies.
MODEL_SPEEDUP_FLOORS: Dict[str, float] = {
    "Static": 4.0,
    "Adaptive": 3.0,
    "VM-Part": 8.0,
    "Jigsaw": 10.0,
    "Jumanji": 8.0,
}

#: Overall (sum-of-reference / sum-of-batch) floor at full scale.
MODEL_OVERALL_FLOOR = 10.0

#: Mix count at which the full per-design floors kick in.
MODEL_FLOOR_MIXES = 8

#: Floor applied below :data:`MODEL_FLOOR_MIXES` mixes: catches only a
#: catastrophic regression (batch slower than reference) without making
#: tiny smoke runs flaky.
MODEL_SMOKE_FLOOR = 0.5


def run_model_bench(
    mixes: int = 2,
    epochs: Optional[int] = None,
    designs: Optional[List[str]] = None,
    lc_workload: str = "xapian",
    load: str = "high",
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """Benchmark the batched multi-mix epoch engine on the Fig. 13 loop.

    Each design runs once as a single
    :class:`~repro.model.batch.BatchSystemModel` over all ``mixes``
    mixes (one fused queueing kernel per epoch), then once per mix
    under the frozen scalar reference engine with the same seeds and a
    fresh workload each; every per-mix ``RunResult`` pair must be
    bit-identical. Deadlines are prewarmed (they are a shared
    ``lru_cache`` both engines hit) so the timing covers the epoch loop
    itself. Per-design speedups are gated against
    :data:`MODEL_SPEEDUP_FLOORS` when ``mixes`` is at least
    :data:`MODEL_FLOOR_MIXES`. ``output`` defaults to
    ``BENCH_model.json``.
    """
    from .core.designs import make_design
    from .experiments.common import (
        DEFAULT_DESIGNS,
        num_epochs,
        run_seed,
    )
    from .model.batch import BatchSystemModel
    from .model.system import (
        SystemModel,
        compute_deadline_cycles,
        deadline_cache_info,
    )
    from .model.workload import make_default_workload
    from .workloads.mixes import base_app

    if mixes < 1:
        raise ValueError("need at least one batch mix")
    epochs = epochs if epochs is not None else num_epochs()
    designs = list(designs) if designs else list(DEFAULT_DESIGNS)
    at_scale = mixes >= MODEL_FLOOR_MIXES

    # Warm the (shared, bounded) deadline cache outside the timing.
    probe = make_default_workload([lc_workload], mix_seed=0, load=load)
    for app in probe.lc_apps:
        compute_deadline_cycles(
            base_app(app), router_delay=probe.config.router_delay
        )

    seeds = [run_seed(0, m) for m in range(mixes)]
    cells: List[Dict[str, Any]] = []
    per_design: Dict[str, Dict[str, Any]] = {}
    for design_name in designs:
        # One batched run across every mix in lockstep.
        batch_model = BatchSystemModel(
            design_name,
            [
                make_default_workload(
                    [lc_workload], mix_seed=m, load=load
                )
                for m in range(mixes)
            ],
            seeds=seeds,
        )
        start = time.perf_counter()
        batch_results = batch_model.run(epochs)
        batch_wall = time.perf_counter() - start

        # Per-mix scalar reference runs, same seeds, fresh workloads.
        ref_wall = 0.0
        for mix_seed, batch_result in enumerate(batch_results):
            workload = make_default_workload(
                [lc_workload], mix_seed=mix_seed, load=load
            )
            ref_model = SystemModel(
                make_design(design_name), workload,
                seed=seeds[mix_seed], engine="reference",
            )
            start = time.perf_counter()
            ref_result = ref_model.run(epochs)
            cell_wall = time.perf_counter() - start
            ref_wall += cell_wall
            cells.append(
                {
                    "design": design_name,
                    "mix_seed": mix_seed,
                    "reference_seconds": cell_wall,
                    "identical": _canonical_run_result(batch_result)
                    == _canonical_run_result(ref_result),
                }
            )

        floor = (
            MODEL_SPEEDUP_FLOORS.get(design_name, MODEL_SMOKE_FLOOR)
            if at_scale
            else MODEL_SMOKE_FLOOR
        )
        speedup = ref_wall / batch_wall
        placement_hits = batch_model.memo_hits
        subepoch_hits = batch_model.subepoch_hits
        per_design[design_name] = {
            "batch_seconds": batch_wall,
            "reference_seconds": ref_wall,
            "speedup": speedup,
            "speedup_floor": floor,
            "floor_ok": speedup >= floor,
            # Placement-level + sub-epoch (per-app descriptor) hits;
            # both matter — Adaptive memoizes at sub-epoch granularity.
            "memo_hits": placement_hits + subepoch_hits,
            "placement_memo_hits": placement_hits,
            "subepoch_memo_hits": subepoch_hits,
            "memo_misses": sum(
                m.runtime.memo_misses for m in batch_model.models
            ),
            "stages": batch_model.stage_times.as_dict(),
        }

    batch_total = sum(
        e["batch_seconds"] for e in per_design.values()
    )
    ref_total = sum(
        e["reference_seconds"] for e in per_design.values()
    )
    stats_identical = all(c["identical"] for c in cells)
    overall_speedup = ref_total / batch_total
    overall_floor = (
        MODEL_OVERALL_FLOOR if at_scale else MODEL_SMOKE_FLOOR
    )
    floors_ok = (
        all(e["floor_ok"] for e in per_design.values())
        and overall_speedup >= overall_floor
    )
    stages_total: Dict[str, float] = {}
    for entry in per_design.values():
        for stage, seconds in entry["stages"].items():
            stages_total[stage] = (
                stages_total.get(stage, 0.0) + seconds
            )
    info = deadline_cache_info()
    report: Dict[str, Any] = {
        "version": __version__,
        "suite": "model",
        "code_fingerprint": code_fingerprint(),
        "workload": {
            "designs": designs,
            "lc_workload": lc_workload,
            "load": load,
            "mixes": mixes,
            "epochs": epochs,
        },
        "cells": cells,
        "per_design": per_design,
        "batch_seconds": batch_total,
        "reference_seconds": ref_total,
        "speedup": overall_speedup,
        "speedup_floor": overall_floor,
        "floors_enforced": at_scale,
        "floors_ok": floors_ok,
        "stages": stages_total,
        "stats_identical": stats_identical,
        "memo": {
            "hits": sum(
                e["memo_hits"] for e in per_design.values()
            ),
            "misses": sum(
                e["memo_misses"] for e in per_design.values()
            ),
        },
        "deadline_cache": {
            "maxsize": info.maxsize,
            "currsize": info.currsize,
            "bounded": info.maxsize is not None,
        },
        "ok": stats_identical
        and floors_ok
        and info.maxsize is not None,
    }
    if output is None:
        output = "BENCH_model.json"
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


def cmd_model_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench --suite model``."""
    settings = Settings.from_env()
    output = args.output
    if output == "BENCH_sweeps.json":
        output = "BENCH_model.json"
    mixes = args.mixes
    if mixes is None:
        mixes = settings.bench_mixes
    if mixes is None:
        mixes = 2
    epochs = args.epochs
    if epochs is None:
        epochs = settings.bench_epochs
    report = run_model_bench(
        mixes=mixes,
        epochs=epochs,
        output=output,
    )
    wl = report["workload"]
    print(
        f"model: {len(wl['designs'])} designs x {wl['mixes']} mixes "
        f"x {wl['epochs']} epochs ({wl['lc_workload']}/{wl['load']})"
    )
    for name, entry in report["per_design"].items():
        flag = "" if entry["floor_ok"] else "  << BELOW FLOOR"
        print(
            f"  {name:<10s} batch {entry['batch_seconds']:.2f}s vs "
            f"reference {entry['reference_seconds']:.2f}s "
            f"({entry['speedup']:.2f}x, floor "
            f"{entry['speedup_floor']:.1f}x, "
            f"{entry['memo_hits']} memo hits){flag}"
        )
        st = entry["stages"]
        print(
            f"  {'':<10s} stages: placer {st['placer']:.2f}s, "
            f"memo {st['memo']:.2f}s, queueing {st['queueing']:.2f}s, "
            f"metrics {st['metrics']:.2f}s"
        )
    print(
        f"  overall: {report['speedup']:.2f}x "
        f"(floor {report['speedup_floor']:.1f}x"
        f"{', enforced' if report['floors_enforced'] else ', smoke'}), "
        f"stats identical: {report['stats_identical']}, "
        f"deadline cache bounded: "
        f"{report['deadline_cache']['bounded']}"
    )
    print(f"wrote {report['output']}")
    if not report["ok"]:
        print(
            "MODEL SUITE FAILED: engines diverged, a speedup floor "
            "was missed, or the deadline cache is unbounded"
        )
        return 1
    return 0


# --------------------------------------------------------------------------
# faults suite (chaos smoke)
# --------------------------------------------------------------------------


def run_faults_bench(
    fault_seed: int = 0,
    jobs: Optional[int] = None,
    mixes: int = 2,
    epochs: int = 3,
    drill_epochs: int = 12,
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """The chaos smoke: differential sweep + degraded-runtime drill.

    Runs entirely on throwaway cache directories (the user's result
    cache is never touched), so every invocation exercises the cold
    compute path, the retry/crash-recovery machinery, and — on the
    second faulty pass — the corrupt-entry quarantine path. Sets
    ``report["ok"]`` only if the faulty sweeps are bit-identical to the
    clean one *and* the drill never violated bank isolation.
    """
    import shutil
    import tempfile

    from .chaos import degraded_runtime_cell, differential_sweep
    from .faults import FaultPlan
    from .runner import RetryPolicy, SweepRunner, compute_cell

    jobs_resolved = resolve_jobs(jobs)
    sweep_kwargs = dict(
        designs=("Static", "Jumanji"),
        lc_workloads=("xapian",),
        loads=("high",),
        mixes=mixes,
        epochs=epochs,
    )
    sweep_plan = FaultPlan(
        seed=fault_seed,
        worker_crash=0.3,
        cell_error=0.2,
        cache_corrupt=0.4,
    )
    policy = RetryPolicy(retries=6, backoff_seconds=0.01)
    clean_dir = tempfile.mkdtemp(prefix="repro-faults-clean-")
    faulty_dir = tempfile.mkdtemp(prefix="repro-faults-chaos-")
    try:
        clean_runner = SweepRunner(
            jobs=jobs_resolved, cache=ResultCache(clean_dir)
        )
        faulty_runner = SweepRunner(
            jobs=jobs_resolved,
            cache=ResultCache(faulty_dir),
            policy=policy,
            fault_plan=sweep_plan,
        )
        start = time.perf_counter()
        cold_identical, clean_outcomes, _ = differential_sweep(
            clean_runner, faulty_runner, **sweep_kwargs
        )
        cold_wall = time.perf_counter() - start
        # Second pass over the possibly-corrupted cache: quarantine and
        # recompute instead of failing, still bit-identical.
        warm_runner = SweepRunner(
            jobs=jobs_resolved,
            cache=ResultCache(faulty_dir),
            policy=policy,
            fault_plan=sweep_plan,
        )
        start = time.perf_counter()
        warm_identical, _, _ = differential_sweep(
            clean_runner, warm_runner, **sweep_kwargs
        )
        warm_wall = time.perf_counter() - start
    finally:
        shutil.rmtree(clean_dir, ignore_errors=True)
        shutil.rmtree(faulty_dir, ignore_errors=True)

    drill_plan = FaultPlan(
        seed=fault_seed,
        telemetry_nan=0.25,
        telemetry_negative=0.2,
        telemetry_drop=0.2,
        cell_error=0.3,
    )
    drill = compute_cell(
        degraded_runtime_cell(
            epochs=drill_epochs, plan=drill_plan.as_params()
        )
    )

    ok = bool(cold_identical and warm_identical and drill["isolation_ok"])
    report: Dict[str, Any] = {
        "version": __version__,
        "suite": "faults",
        "code_fingerprint": code_fingerprint(),
        "jobs": jobs_resolved,
        "fault_seed": fault_seed,
        "sweep_plan": sweep_plan.as_params(),
        "drill_plan": drill_plan.as_params(),
        "differential": {
            "cells": len(clean_outcomes),
            "cold_identical": cold_identical,
            "cold_wall_seconds": cold_wall,
            "cold_stats": faulty_runner.stats.as_dict(),
            "warm_identical": warm_identical,
            "warm_wall_seconds": warm_wall,
            "warm_stats": warm_runner.stats.as_dict(),
        },
        "drill": {
            "epochs": drill["epochs"],
            "isolation_ok": drill["isolation_ok"],
            "shared_bank_epochs": drill["shared_bank_epochs"],
            "degraded_epochs": drill["degraded_epochs"],
            "telemetry_events": drill["telemetry_events"],
            "placement_events": drill["placement_events"],
        },
        "ok": ok,
    }
    if output is None:
        output = "BENCH_faults.json"
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


def cmd_faults_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench --suite faults``."""
    output = args.output
    if output == "BENCH_sweeps.json":
        output = "BENCH_faults.json"
    report = run_faults_bench(
        fault_seed=args.fault_seed,
        jobs=args.jobs,
        mixes=args.mixes if args.mixes is not None else 2,
        epochs=args.epochs if args.epochs is not None else 3,
        output=output,
    )
    diff = report["differential"]
    drill = report["drill"]
    print(
        f"faults: seed={report['fault_seed']}, jobs={report['jobs']}, "
        f"{diff['cells']} sweep cells"
    )
    print(
        f"  cold chaos sweep: identical={diff['cold_identical']} "
        f"({diff['cold_wall_seconds']:.2f}s, "
        f"{diff['cold_stats']['retries']} retries, "
        f"{diff['cold_stats']['pool_respawns']} pool respawns)"
    )
    print(
        f"  warm chaos sweep: identical={diff['warm_identical']} "
        f"({diff['warm_wall_seconds']:.2f}s, "
        f"{diff['warm_stats']['quarantined']} quarantined)"
    )
    print(
        f"  degraded-runtime drill: isolation_ok={drill['isolation_ok']} "
        f"over {drill['epochs']} epochs "
        f"({len(drill['degraded_epochs'])} degraded, "
        f"{drill['telemetry_events']} telemetry drops)"
    )
    print(f"wrote {report['output']}")
    if not report["ok"]:
        print("FAULT SUITE FAILED: see report above")
        return 1
    return 0


# --------------------------------------------------------------------------
# obs suite (observability overhead gate)
# --------------------------------------------------------------------------


#: Span names a traced model run must produce for the observability
#: subsystem to count as covering the 100 ms loop end to end.
OBS_REQUIRED_SPANS = frozenset(
    {
        "model.epoch",
        "runtime.reconfigure",
        "controller.update",
        "placer.allocate",
        "placer.latcrit",
        "placer.lookahead",
        "placer.jumanji",
    }
)

#: Disabled-mode overhead gate: instrumented-but-disabled must cost at
#: most this fraction more than the same code with the instrumentation
#: stubbed out entirely.
OBS_OVERHEAD_GATE = 0.02


def run_obs_bench(
    epochs: Optional[int] = None,
    repeats: int = 5,
    lc_workload: str = "xapian",
    load: str = "high",
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """Gate the observability subsystem: zero-cost off, complete on.

    Three checks on the Fig. 13 epoch loop (Jumanji, one mix):

    * **overhead** — interleaved min-of-``repeats`` timings of the
      disabled-but-instrumented run against the same run with every
      ``repro.obs`` hook swapped for a bare stub
      (:func:`repro.obs.uninstrumented`); the ratio must stay within
      :data:`OBS_OVERHEAD_GATE`.
    * **coverage** — an enabled run must produce every span in
      :data:`OBS_REQUIRED_SPANS` and write a loadable trace + metrics
      snapshot.
    * **determinism** — two enabled same-seed runs must produce
      identical metric snapshots (no wall-clock leaks into values).
    """
    import tempfile

    from . import obs
    from .core.designs import make_design
    from .experiments.common import num_epochs, run_seed
    from .model.system import SystemModel, compute_deadline_cycles
    from .model.workload import make_default_workload
    from .workloads.mixes import base_app

    if repeats < 1:
        raise ValueError("need at least one timing repeat")
    epochs = epochs if epochs is not None else num_epochs()
    seed = run_seed(0, 0)

    def one_run():
        workload = make_default_workload(
            [lc_workload], mix_seed=0, load=load
        )
        model = SystemModel(
            make_design("Jumanji"), workload, seed=seed
        )
        return model.run(epochs)

    # Warm shared caches (deadline lru_cache, imports, numpy) outside
    # the timed region.
    probe = make_default_workload([lc_workload], mix_seed=0, load=load)
    for app in probe.lc_apps:
        compute_deadline_cycles(
            base_app(app), router_delay=probe.config.router_delay
        )
    one_run()

    obs.reset()  # ensure disabled for the timing passes
    disabled_times: List[float] = []
    stub_times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        one_run()
        disabled_times.append(time.perf_counter() - start)
        with obs.uninstrumented():
            start = time.perf_counter()
            one_run()
            stub_times.append(time.perf_counter() - start)
    min_disabled = min(disabled_times)
    min_stub = min(stub_times)
    overhead = min_disabled / min_stub - 1.0
    overhead_ok = overhead <= OBS_OVERHEAD_GATE

    # Coverage + determinism: two enabled same-seed runs.
    snapshots: List[Dict[str, Any]] = []
    span_names: set = set()
    trace_loadable = False
    with tempfile.TemporaryDirectory() as tmp:
        for attempt in range(2):
            obs.reset()
            trace = os.path.join(tmp, f"trace{attempt}.jsonl")
            metrics = os.path.join(tmp, f"metrics{attempt}.txt")
            obs.configure(trace=trace, metrics=metrics)
            try:
                one_run()
            finally:
                obs.flush()
            snapshots.append(obs.metrics().snapshot())
            records = obs.load_trace(trace)
            span_names |= {
                r["name"] for r in records if r.get("type") == "span"
            }
            trace_loadable = bool(records)
            obs.reset()
    missing = sorted(OBS_REQUIRED_SPANS - span_names)
    coverage_ok = not missing and trace_loadable
    deterministic = snapshots[0] == snapshots[1]

    ok = overhead_ok and coverage_ok and deterministic
    report: Dict[str, Any] = {
        "version": __version__,
        "suite": "obs",
        "code_fingerprint": code_fingerprint(),
        "workload": {
            "design": "Jumanji",
            "lc_workload": lc_workload,
            "load": load,
            "epochs": epochs,
            "repeats": repeats,
        },
        "overhead": {
            "disabled_seconds": disabled_times,
            "stub_seconds": stub_times,
            "min_disabled_seconds": min_disabled,
            "min_stub_seconds": min_stub,
            "overhead": overhead,
            "gate": OBS_OVERHEAD_GATE,
            "ok": overhead_ok,
        },
        "coverage": {
            "spans": sorted(span_names),
            "required": sorted(OBS_REQUIRED_SPANS),
            "missing": missing,
            "trace_loadable": trace_loadable,
            "ok": coverage_ok,
        },
        "determinism": {"identical_snapshots": deterministic},
        "ok": ok,
    }
    if output is None:
        output = "BENCH_obs.json"
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


def cmd_obs_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench --suite obs``."""
    output = args.output
    if output == "BENCH_sweeps.json":
        output = "BENCH_obs.json"
    report = run_obs_bench(epochs=args.epochs, output=output)
    wl = report["workload"]
    oh = report["overhead"]
    cov = report["coverage"]
    print(
        f"obs: {wl['design']}/{wl['lc_workload']}/{wl['load']}, "
        f"{wl['epochs']} epochs x {wl['repeats']} repeats"
    )
    print(
        f"  disabled overhead: {oh['overhead']:+.2%} "
        f"(gate {oh['gate']:.0%}, min {oh['min_disabled_seconds']:.3f}s "
        f"vs stub {oh['min_stub_seconds']:.3f}s)"
    )
    print(
        f"  span coverage: {len(cov['spans'])} names, "
        f"missing: {cov['missing'] or 'none'}"
    )
    print(
        f"  deterministic metrics: "
        f"{report['determinism']['identical_snapshots']}"
    )
    print(f"wrote {report['output']}")
    if not report["ok"]:
        print("OBS SUITE FAILED: see report above")
        return 1
    return 0


def run_fleet_bench(
    chips: Optional[int] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """Gate the rack-scale fleet layer: determinism + invariants.

    Runs one seeded scenario — diurnal load, Poisson churn, a possible
    flash crowd, and rack-correlated chip failures — twice end to end:

    * **determinism** — the two canonical results must serialise
      byte-identically (``FleetResult.to_json``); any wall-clock or
      iteration-order leak fails the gate.
    * **invariants** — neither run may record a conservation, capacity,
      or isolation violation (``FleetResult.ok``).
    * **throughput** — chip-epochs/s for the slower run is recorded so
      regressions in the hierarchical epoch loop show up in the report.
    * **resilience storm** — a failure-heavy scenario (correlated rack
      failures, repairable chips, stragglers, bounded admission queue)
      must finish with zero invariant violations, at least one
      completed repair, and repaired chips back in service.
    * **checkpoint/resume** — a run killed mid-flight and resumed from
      its ``--checkpoint`` journal must serialise byte-identically to
      an uninterrupted run of the same scenario.
    """
    from .faults import FaultPlan
    from .fleet import Fleet, FleetJournal, Scenario, run_fleet

    settings = Settings.from_env()
    if chips is None:
        chips = settings.fleet_chips or 32
    if epochs is None:
        epochs = settings.fleet_epochs or 10
    scenario = Scenario(
        chips=chips,
        epochs=epochs,
        seed=seed,
        flash_prob=0.1,
        fault_plan=FaultPlan(seed=seed, chip_failure=0.02),
    )

    runs: List[Dict[str, Any]] = []
    payloads: List[str] = []
    for _ in range(2):
        start = time.perf_counter()
        result = run_fleet(scenario)
        wall = time.perf_counter() - start
        payloads.append(result.to_json())
        runs.append(
            {
                "wall_seconds": wall,
                "chip_epochs_per_s": chips * epochs / wall,
                "ok": result.ok,
                "counters": dict(result.counters),
                "invariant_violations": list(
                    result.invariant_violations
                ),
            }
        )

    deterministic = payloads[0] == payloads[1]
    invariants_ok = all(r["ok"] for r in runs)

    # Resilience storm: failures every epoch, most chips repairable,
    # stragglers, and enough churn that repaired sockets are needed
    # again. The gate requires the self-healing loop to demonstrably
    # close: repairs completed, repaired chips back in service, and
    # not a single invariant violated under the storm.
    storm = Scenario(
        chips=chips,
        epochs=epochs,
        seed=seed,
        rack_size=2,
        arrival_rate=2.0,
        flash_prob=0.2,
        admission_patience=3,
        pending_limit=16,
        fault_plan=FaultPlan(
            seed=seed,
            chip_failure=0.08,
            chip_repair=0.9,
            chip_slow=0.1,
            repair_mttr_epochs=2.0,
        ),
    )
    storm_fleet = Fleet(storm)
    storm_result = storm_fleet.run()
    repaired = sorted(storm_fleet.repaired_chips)
    serving = [
        chip_id
        for chip_id in repaired
        if storm_fleet.chips[chip_id].alive
        and storm_fleet.chips[chip_id].tenants
    ]
    storm_ok = (
        storm_result.ok
        and storm_result.counters.get("repairs", 0) > 0
        and bool(serving)
    )

    # Checkpoint/resume: journal a small storm run, abandon it halfway
    # (the in-process stand-in for kill -9; the chaos test suite does
    # the real subprocess kill), then resume from the journal and
    # demand byte-identity with an uninterrupted run.
    ck_scenario = Scenario(
        chips=min(chips, 8),
        epochs=max(4, min(epochs, 8)),
        seed=seed,
        rack_size=2,
        flash_prob=0.1,
        admission_patience=3,
        pending_limit=8,
        fault_plan=FaultPlan(
            seed=seed,
            chip_failure=0.05,
            chip_repair=0.8,
            chip_slow=0.08,
            repair_mttr_epochs=2.0,
        ),
    )
    uninterrupted = run_fleet(ck_scenario).to_json()
    interrupt_at = ck_scenario.epochs // 2
    with tempfile.TemporaryDirectory() as tmp:
        ck_path = pathlib.Path(tmp) / "fleet.journal"
        killed = Fleet(ck_scenario)
        journal = FleetJournal(ck_path)
        journal.write_header(ck_scenario.as_params(), "Jumanji")
        killed.attach_journal(journal)
        killed.setup()
        for epoch in range(interrupt_at):
            killed.step(epoch)
        del killed  # the "crash": only the journal survives
        resumed = run_fleet(
            ck_scenario, checkpoint=ck_path
        ).to_json()
    resume_identical = resumed == uninterrupted

    ok = (
        deterministic and invariants_ok and storm_ok
        and resume_identical
    )
    report: Dict[str, Any] = {
        "version": __version__,
        "suite": "fleet",
        "code_fingerprint": code_fingerprint(),
        "scenario": scenario.as_params(),
        "runs": runs,
        "chip_epochs_per_s": min(
            r["chip_epochs_per_s"] for r in runs
        ),
        "determinism": {"identical_results": deterministic},
        "invariants": {"ok": invariants_ok},
        "resilience": {
            "scenario": storm.as_params(),
            "counters": dict(storm_result.counters),
            "invariant_violations": list(
                storm_result.invariant_violations
            ),
            "repaired_chips": repaired,
            "repaired_serving": serving,
            "ok": storm_ok,
        },
        "checkpoint": {
            "scenario": ck_scenario.as_params(),
            "interrupted_at_epoch": interrupt_at,
            "resume_identical": resume_identical,
            "ok": resume_identical,
        },
        "ok": ok,
    }
    if output is None:
        output = "BENCH_fleet.json"
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


def cmd_fleet_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench --suite fleet``."""
    output = args.output
    if output == "BENCH_sweeps.json":
        output = "BENCH_fleet.json"
    report = run_fleet_bench(
        chips=args.chips,
        epochs=args.epochs,
        seed=args.fault_seed,
        output=output,
    )
    sc = report["scenario"]
    print(
        f"fleet: {sc['chips']} chips x {sc['epochs']} epochs, "
        f"seed {sc['seed']}"
    )
    for i, run in enumerate(report["runs"]):
        counters = run["counters"]
        print(
            f"  run {i}: {run['wall_seconds']:.2f}s "
            f"({run['chip_epochs_per_s']:.0f} chip-epochs/s), "
            f"{counters['admissions']} admissions, "
            f"{counters['migrations']} migrations, "
            f"{counters['chips_lost']} chips lost, "
            f"{len(run['invariant_violations'])} violations"
        )
    print(
        f"  deterministic results: "
        f"{report['determinism']['identical_results']}"
    )
    res = report["resilience"]
    print(
        f"  resilience storm: {res['counters']['repairs']} repairs, "
        f"{len(res['repaired_serving'])} repaired chip(s) serving, "
        f"{len(res['invariant_violations'])} violations "
        f"-> {'ok' if res['ok'] else 'FAILED'}"
    )
    ck = report["checkpoint"]
    print(
        f"  checkpoint/resume: killed at epoch "
        f"{ck['interrupted_at_epoch']}, byte-identical resume: "
        f"{ck['resume_identical']}"
    )
    print(f"wrote {report['output']}")
    if not report["ok"]:
        print("FLEET SUITE FAILED: see report above")
        return 1
    return 0


def run_serve_bench(
    tenants: Optional[int] = None,
    requests: Optional[int] = None,
    seed: int = 0,
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """Gate the placement service: throughput + determinism.

    Boots an in-process :class:`~repro.serve.ServeDaemon` on a free
    port and drives it twice with the same seeded synthetic-tenant
    script (``repro.serve.loadgen``):

    * **correctness** — both runs must finish with zero client errors
      and zero invariant violations (epoch echo, positive ``lat_sizes``,
      LC apps present in every non-degraded allocation).
    * **determinism** — the per-tenant decision fingerprints (canonical
      JSON of each decision minus the session id) must be
      byte-identical between the runs: same telemetry script in, same
      placement sequence out.
    * **throughput** — decisions/s and client-observed p50/p95 decision
      latency of the slower run are recorded so regressions in the
      request path show up in the report.
    """
    from .serve import ServeDaemon
    from .serve.loadgen import run_loadgen

    if tenants is None:
        tenants = 40
    if requests is None:
        requests = 25

    runs: List[Dict[str, Any]] = []
    fingerprints: List[Dict[int, List[str]]] = []
    with ServeDaemon(port=0) as daemon:
        for _ in range(2):
            report_run = run_loadgen(
                daemon.host,
                daemon.port,
                tenants=tenants,
                requests=requests,
                seed=seed,
            )
            fingerprints.append(report_run.fingerprints)
            runs.append(
                {
                    "wall_seconds": report_run.wall_seconds,
                    "decisions": report_run.decisions,
                    "decisions_per_s": report_run.decisions_per_sec,
                    "p50_decision_ms": report_run.latency_ms(50.0),
                    "p95_decision_ms": report_run.latency_ms(95.0),
                    "errors": list(report_run.errors),
                    "invariant_violations": list(
                        report_run.violations
                    ),
                    "ok": report_run.ok,
                }
            )

    correct = all(r["ok"] for r in runs)
    complete = all(
        r["decisions"] == tenants * requests for r in runs
    )
    deterministic = fingerprints[0] == fingerprints[1]
    ok = correct and complete and deterministic
    report: Dict[str, Any] = {
        "version": __version__,
        "suite": "serve",
        "code_fingerprint": code_fingerprint(),
        "tenants": tenants,
        "requests_per_tenant": requests,
        "seed": seed,
        "runs": runs,
        "decisions_per_s": min(r["decisions_per_s"] for r in runs),
        "p95_decision_ms": max(r["p95_decision_ms"] for r in runs),
        "determinism": {"identical_decisions": deterministic},
        "invariants": {"ok": correct, "complete": complete},
        "ok": ok,
    }
    if output is None:
        output = "BENCH_serve.json"
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench --suite serve``."""
    output = args.output
    if output == "BENCH_sweeps.json":
        output = "BENCH_serve.json"
    report = run_serve_bench(
        tenants=args.tenants,
        requests=args.requests,
        seed=args.fault_seed,
        output=output,
    )
    print(
        f"serve: {report['tenants']} tenants x "
        f"{report['requests_per_tenant']} requests, "
        f"seed {report['seed']}"
    )
    for i, run in enumerate(report["runs"]):
        print(
            f"  run {i}: {run['decisions']} decisions in "
            f"{run['wall_seconds']:.2f}s "
            f"({run['decisions_per_s']:.0f}/s), "
            f"p95 {run['p95_decision_ms']:.1f} ms, "
            f"{len(run['errors'])} errors, "
            f"{len(run['invariant_violations'])} violations"
        )
    print(
        f"  deterministic decisions: "
        f"{report['determinism']['identical_decisions']}"
    )
    print(f"wrote {report['output']}")
    if not report["ok"]:
        print("SERVE SUITE FAILED: see report above")
        return 1
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro bench`` options to a subparser."""
    parser.add_argument(
        "--suite",
        choices=("sweeps", "tracesim", "model", "faults", "obs",
                 "fleet", "serve"),
        default="sweeps",
        help="what to benchmark: figure sweeps (default), the "
        "trace-simulator fast path, the vectorised epoch engine, "
        "the fault-injection chaos smoke, the observability "
        "overhead gate, the rack-scale fleet gate, or the "
        "placement-service gate",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        choices=sorted(BENCH_FIGURES),
        default=None,
        help="figures to benchmark (default: all sweep figures)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers (default: REPRO_JOBS or cpu count)",
    )
    parser.add_argument("--mixes", type=int, default=None,
                        help="batch mixes per workload")
    parser.add_argument("--epochs", type=int, default=None,
                        help="epochs per run")
    parser.add_argument(
        "--cold",
        action="store_true",
        help="clear the result cache first (force full recompute)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_sweeps.json",
        help="report path (default BENCH_sweeps.json, or "
        "BENCH_tracesim.json for --suite tracesim)",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=20_000,
        help="tracesim suite: accesses per core (default 20000)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=4,
        help="tracesim suite: independent sharded seed runs "
        "(default 4)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="tracesim suite: dump cProfile stats for one simulated "
        "epoch next to the report",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="faults/fleet suite: scenario + FaultPlan seed "
        "(default 0)",
    )
    parser.add_argument(
        "--chips",
        type=int,
        default=None,
        help="fleet suite: sockets in the fleet "
        "(default REPRO_FLEET_CHIPS or 32)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="serve suite: concurrent tenant sessions (default 40)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="serve suite: telemetry posts per tenant (default 25)",
    )


def cmd_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench``."""
    if args.suite == "tracesim":
        return cmd_tracesim_bench(args)
    if args.suite == "model":
        return cmd_model_bench(args)
    if args.suite == "faults":
        return cmd_faults_bench(args)
    if args.suite == "obs":
        return cmd_obs_bench(args)
    if args.suite == "fleet":
        return cmd_fleet_bench(args)
    if args.suite == "serve":
        return cmd_serve_bench(args)
    report = run_bench(
        figures=args.figures,
        jobs=args.jobs,
        mixes=args.mixes,
        epochs=args.epochs,
        cold=args.cold,
        output=args.output,
    )
    print(
        f"bench: {len(report['figures'])} figure(s), "
        f"jobs={report['jobs']}, cache={report['cache_dir']}"
    )
    for name, entry in report["figures"].items():
        print(
            f"  {name}: {entry['wall_seconds']:.2f}s wall, "
            f"{entry['computed']} computed + "
            f"{entry['cache_hits']} cached cells, "
            f"{entry['speedup_vs_serial']:.1f}x vs serial"
        )
    total = report["total"]
    print(
        f"  total: {total['wall_seconds']:.2f}s wall, "
        f"cache hit rate {total['cache_hit_rate']:.0%}, "
        f"{total['speedup_vs_serial']:.1f}x vs serial"
    )
    print(f"wrote {report['output']}")
    return 0
