"""``repro bench``: timed sweep benchmarking with a machine-readable report.

Runs the sweep-backed figures (Fig. 13-18) through the parallel runner
and writes ``BENCH_sweeps.json`` recording, per figure:

* wall-clock seconds,
* cells computed vs. served from the result cache,
* the estimated serial cost (sum of per-cell compute durations) and the
  resulting speedup vs. that serial baseline.

The serial estimate comes from the durations the cache records for
every cell, so warm runs still report an honest speedup without
re-running the sweep serially.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Any, Callable, Dict, List, Optional

from . import __version__
from .runner import (
    ResultCache,
    collecting_stats,
    code_fingerprint,
    resolve_jobs,
)

__all__ = ["BENCH_FIGURES", "run_bench", "add_bench_arguments", "cmd_bench"]


def _fig13(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig13

    fig13.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig14(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig14

    fig14.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig15(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig15

    fig15.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig16(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig16

    fig16.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig17(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig17

    fig17.run(mixes=mixes, epochs=epochs, jobs=jobs)


def _fig18(mixes: Optional[int], epochs: Optional[int],
           jobs: Optional[int]) -> None:
    from .experiments import fig18

    fig18.run(mixes=mixes, epochs=epochs, jobs=jobs)


#: The sweep-backed figures ``repro bench`` can time.
BENCH_FIGURES: Dict[str, Callable[..., None]] = {
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "fig18": _fig18,
}


def run_bench(
    figures: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    mixes: Optional[int] = None,
    epochs: Optional[int] = None,
    cold: bool = False,
    output: Optional[os.PathLike] = None,
) -> Dict[str, Any]:
    """Benchmark the requested figures; returns (and writes) the report.

    With ``cold=True`` the result cache is cleared first, so every cell
    is recomputed. ``output`` defaults to ``BENCH_sweeps.json`` in the
    current directory; pass ``output=""``/None-like falsy to skip
    writing.
    """
    figures = list(figures) if figures else list(BENCH_FIGURES)
    unknown = [f for f in figures if f not in BENCH_FIGURES]
    if unknown:
        raise ValueError(
            f"unknown figures {unknown}; choose from "
            f"{sorted(BENCH_FIGURES)}"
        )
    jobs_resolved = resolve_jobs(jobs)
    cache = ResultCache()
    if cold:
        cache.clear()
    report: Dict[str, Any] = {
        "version": __version__,
        "code_fingerprint": code_fingerprint(),
        "jobs": jobs_resolved,
        "mixes": mixes,
        "epochs": epochs,
        "cold": cold,
        "cache_dir": str(cache.directory),
        "figures": {},
    }
    for name in figures:
        with collecting_stats() as stats:
            start = time.perf_counter()
            BENCH_FIGURES[name](mixes=mixes, epochs=epochs, jobs=jobs)
            wall = time.perf_counter() - start
        entry = stats.as_dict()
        # Figure wall-clock includes aggregation outside the runner.
        entry["wall_seconds"] = wall
        entry["speedup_vs_serial"] = (
            entry["serial_seconds_estimate"] / wall
            if wall > 0
            else float("inf")
        )
        report["figures"][name] = entry
    totals = {
        "cells": sum(
            f["cells"] for f in report["figures"].values()
        ),
        "computed": sum(
            f["computed"] for f in report["figures"].values()
        ),
        "cache_hits": sum(
            f["cache_hits"] for f in report["figures"].values()
        ),
        "wall_seconds": sum(
            f["wall_seconds"] for f in report["figures"].values()
        ),
        "serial_seconds_estimate": sum(
            f["serial_seconds_estimate"]
            for f in report["figures"].values()
        ),
    }
    totals["cache_hit_rate"] = (
        totals["cache_hits"] / totals["cells"] if totals["cells"] else 0.0
    )
    totals["speedup_vs_serial"] = (
        totals["serial_seconds_estimate"] / totals["wall_seconds"]
        if totals["wall_seconds"] > 0
        else float("inf")
    )
    report["total"] = totals
    if output is None:
        output = "BENCH_sweeps.json"
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    report["output"] = str(path)
    return report


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro bench`` options to a subparser."""
    parser.add_argument(
        "--figures",
        nargs="+",
        choices=sorted(BENCH_FIGURES),
        default=None,
        help="figures to benchmark (default: all sweep figures)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers (default: REPRO_JOBS or cpu count)",
    )
    parser.add_argument("--mixes", type=int, default=None,
                        help="batch mixes per workload")
    parser.add_argument("--epochs", type=int, default=None,
                        help="epochs per run")
    parser.add_argument(
        "--cold",
        action="store_true",
        help="clear the result cache first (force full recompute)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_sweeps.json",
        help="report path (default BENCH_sweeps.json)",
    )


def cmd_bench(args: argparse.Namespace) -> int:
    """CLI entry point for ``repro bench``."""
    report = run_bench(
        figures=args.figures,
        jobs=args.jobs,
        mixes=args.mixes,
        epochs=args.epochs,
        cold=args.cold,
        output=args.output,
    )
    print(
        f"bench: {len(report['figures'])} figure(s), "
        f"jobs={report['jobs']}, cache={report['cache_dir']}"
    )
    for name, entry in report["figures"].items():
        print(
            f"  {name}: {entry['wall_seconds']:.2f}s wall, "
            f"{entry['computed']} computed + "
            f"{entry['cache_hits']} cached cells, "
            f"{entry['speedup_vs_serial']:.1f}x vs serial"
        )
    total = report["total"]
    print(
        f"  total: {total['wall_seconds']:.2f}s wall, "
        f"cache hit rate {total['cache_hit_rate']:.0%}, "
        f"{total['speedup_vs_serial']:.1f}x vs serial"
    )
    print(f"wrote {report['output']}")
    return 0
