# Convenience targets for the Jumanji reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples figures clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Paper-scale sweep (40 mixes, 25 epochs) — takes a while.
bench-full:
	REPRO_MIXES=40 REPRO_EPOCHS=25 \
	  $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/security_audit.py
	$(PYTHON) examples/multi_tenant_consolidation.py
	$(PYTHON) examples/closed_loop_trace_sim.py

figures:
	$(PYTHON) examples/reproduce_paper.py

clean:
	rm -rf results/ .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
