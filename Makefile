# Convenience targets for the Jumanji reproduction.

PYTHON ?= python

.PHONY: install test check bench bench-smoke bench-full examples \
	figures clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Tier-1 gate: the full test suite plus a bench smoke run.
check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q
	$(MAKE) bench-smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Two-mix micro-sweep through the parallel runner (<60 s); writes
# BENCH_sweeps.json with wall-clock, cells computed vs cache-hit, and
# speedup vs the serial estimate.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bench \
	  --figures fig13 --mixes 2 --epochs 2

# Paper-scale sweep (40 mixes, 25 epochs) — takes a while.
bench-full:
	REPRO_MIXES=40 REPRO_EPOCHS=25 \
	  $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/security_audit.py
	$(PYTHON) examples/multi_tenant_consolidation.py
	$(PYTHON) examples/closed_loop_trace_sim.py

figures:
	$(PYTHON) examples/reproduce_paper.py

clean:
	rm -rf results/ .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
