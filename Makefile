# Convenience targets for the Jumanji reproduction.

PYTHON ?= python

.PHONY: install test check check-faults check-resilience bench \
	bench-smoke bench-tracesim bench-model bench-obs bench-fleet \
	bench-serve bench-full examples figures clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Tier-1 gate: the full test suite plus the bench smoke runs.
check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q
	$(MAKE) bench-smoke
	$(MAKE) bench-tracesim
	$(MAKE) bench-model
	$(MAKE) bench-obs
	$(MAKE) bench-fleet
	$(MAKE) bench-serve
	$(MAKE) check-faults
	$(MAKE) check-resilience

# Chaos smoke (seconds, fixed seed): the fault-injection bench suite —
# differential clean-vs-chaos sweeps on throwaway caches plus the
# degraded-runtime drill — then the slow chaos-marked fault-matrix
# tests (worker stalls, hard deaths, degraded-serial fallback).
check-faults:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite faults \
	  --mixes 1 --epochs 2 --output BENCH_faults_smoke.json
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q -m chaos

# Self-healing drill (seconds, fixed seed): every resilience-marked
# test — repair lifecycle, health-aware scheduling tiers, admission
# backpressure, journal semantics, byte-identical resume — including
# the chaos-marked kill -9 of a real `repro fleet run --checkpoint`
# subprocess.
check-resilience:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q -m resilience

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Two-mix micro-sweep through the parallel runner (<60 s); writes
# BENCH_sweeps.json with wall-clock, cells computed vs cache-hit, and
# speedup vs the serial estimate.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bench \
	  --figures fig13 --mixes 2 --epochs 2

# Tiny trace-simulator benchmark (seconds): times the array-backed
# fast path against the frozen scalar reference on identical replayed
# streams and shards two seed runs through the result cache. Writes to
# a scratch path so the committed default-scale BENCH_tracesim.json
# (regenerate with `python -m repro bench --suite tracesim`) survives.
bench-tracesim:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite tracesim \
	  --accesses 1000 --seeds 2 --output BENCH_tracesim_smoke.json

# Tiny epoch-engine benchmark (seconds): runs every fig13 design under
# both the vectorised fast engine and the frozen scalar reference on
# one small mix and exits non-zero if the two diverge bit-for-bit
# (stats_identical gate). Writes to a scratch path so the committed
# default-scale BENCH_model.json (regenerate with
# `python -m repro bench --suite model`) survives.
bench-model:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite model \
	  --mixes 1 --epochs 4 --output BENCH_model_smoke.json

# Observability gate (seconds): instrumentation must cost <2% with
# tracing disabled (vs a fully stubbed run), an enabled run must cover
# every required span, and same-seed metric snapshots must be
# identical. Exits non-zero on any gate failure.
bench-obs:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite obs \
	  --epochs 4 --output BENCH_obs_smoke.json

# Rack-scale fleet gate (seconds, fixed seed): one churn + flash +
# chip-failure scenario run twice through the hierarchical epoch loop;
# exits non-zero if the two canonical results differ byte-for-byte,
# any conservation/capacity/isolation invariant breaks, the
# failure-storm scenario ends without completed repairs (with repaired
# chips back in service and zero violations), or a run killed mid-way
# fails to resume byte-identically from its journal. Writes to a
# scratch path so the committed default-scale BENCH_fleet.json
# (regenerate with `python -m repro bench --suite fleet`) survives.
bench-fleet:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite fleet \
	  --chips 8 --epochs 6 --output BENCH_fleet_smoke.json

# Placement-service gate (seconds, fixed seed): an in-process daemon
# is driven twice by the same seeded synthetic-tenant load; exits
# non-zero if any run records a client error or invariant violation,
# or the two decision sequences differ byte-for-byte. Writes to a
# scratch path so the committed default-scale BENCH_serve.json
# (regenerate with `python -m repro bench --suite serve`) survives.
bench-serve:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite serve \
	  --tenants 4 --requests 5 --output BENCH_serve_smoke.json

# Paper-scale sweep (40 mixes, 25 epochs) — takes a while.
bench-full:
	REPRO_MIXES=40 REPRO_EPOCHS=25 \
	  $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/security_audit.py
	$(PYTHON) examples/multi_tenant_consolidation.py
	$(PYTHON) examples/closed_loop_trace_sim.py

figures:
	$(PYTHON) examples/reproduce_paper.py

clean:
	rm -rf results/ .pytest_cache .benchmarks
	rm -f BENCH_sweeps.json BENCH_tracesim_smoke.json \
	  BENCH_model_smoke.json BENCH_faults_smoke.json \
	  BENCH_obs_smoke.json BENCH_fleet_smoke.json \
	  BENCH_serve_smoke.json
	find . -name __pycache__ -type d -exec rm -rf {} +
